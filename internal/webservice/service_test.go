package webservice

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func startService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	svc := New()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

func postScenario(t *testing.T, base string, body string) (int, map[string]string) {
	t.Helper()
	resp, err := http.Post(base+"/api/scenarios", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func getScenario(t *testing.T, base, id string) (int, *scenarioView) {
	t.Helper()
	resp, err := http.Get(base + "/api/scenarios/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sc scenarioView
	json.NewDecoder(resp.Body).Decode(&sc)
	return resp.StatusCode, &sc
}

// waitDone polls until the scenario finishes.
func waitDone(t *testing.T, base, id string) *scenarioView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, sc := getScenario(t, base, id)
		if sc.Status == "done" || sc.Status == "failed" {
			return sc
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("scenario did not finish in 30s")
	return nil
}

// markDone publishes a terminal state on a scenario from a swapped-in
// test runFn, standing in for a finished simulation.
func markDone(sc *Scenario) {
	st := *sc.snap()
	st.Status = "done"
	sc.progress.finish()
	sc.publish(st)
}

func TestScenarioLifecycle(t *testing.T) {
	_, ts := startService(t)
	code, out := postScenario(t, ts.URL, `{"testbed":"emulab","algorithm":"gd","duration_seconds":120}`)
	if code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 (%v)", code, out)
	}
	id := out["id"]
	if id == "" {
		t.Fatal("no id returned")
	}
	sc := waitDone(t, ts.URL, id)
	if sc.Status != "done" {
		t.Fatalf("status = %s (%s)", sc.Status, sc.Error)
	}
	if len(sc.Results) != 1 {
		t.Fatalf("results = %+v", sc.Results)
	}
	// Emulab converges near 0.09-0.1 Gbps.
	if sc.Results[0].MeanGbps < 0.07 || sc.Results[0].MeanGbps > 0.12 {
		t.Fatalf("mean = %v Gbps, want ≈0.1", sc.Results[0].MeanGbps)
	}
	if sc.JainIndex != 1 {
		t.Fatalf("single-agent Jain = %v, want 1", sc.JainIndex)
	}
}

func TestMultiAgentScenarioFairness(t *testing.T) {
	_, ts := startService(t)
	code, out := postScenario(t, ts.URL,
		`{"testbed":"hpclab","algorithm":"gd","agents":2,"stagger_seconds":60,"duration_seconds":300}`)
	if code != http.StatusAccepted {
		t.Fatalf("status = %d", code)
	}
	sc := waitDone(t, ts.URL, out["id"])
	if sc.Status != "done" {
		t.Fatalf("status = %s (%s)", sc.Status, sc.Error)
	}
	if len(sc.Results) != 2 {
		t.Fatalf("results = %+v", sc.Results)
	}
	if sc.JainIndex < 0.9 {
		t.Fatalf("Jain = %v, want ≥0.9", sc.JainIndex)
	}
}

// TestScenarioSubmissionsQueue pins the bounded worker pool: with a
// pool of one, a second accepted submission must wait in "queued" and
// only run once the first scenario releases its slot. The run function
// is swapped for one that blocks on a channel, so admission order is
// observed deterministically rather than raced.
func TestScenarioSubmissionsQueue(t *testing.T) {
	svc := NewWithLimit(1)
	release := make(chan struct{})
	started := make(chan string, 2)
	svc.runFn = func(sc *Scenario) {
		started <- sc.ID
		<-release
		markDone(sc)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Distinct seeds so the two submissions are distinct content
	// addresses (identical ones would coalesce, not queue).
	code, first := postScenario(t, ts.URL, `{"testbed":"emulab"}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submission status = %d, want 202", code)
	}
	code, second := postScenario(t, ts.URL, `{"testbed":"emulab","seed":2}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submission status = %d, want 202 (queueing must not reject)", code)
	}

	running := <-started
	if running != first["id"] {
		t.Fatalf("admitted %q first, want %q", running, first["id"])
	}
	// The pool has one slot and its holder is blocked, so the second
	// scenario cannot have started and must report "queued".
	select {
	case id := <-started:
		t.Fatalf("scenario %q ran past the pool limit", id)
	default:
	}
	status := func(id string) string {
		return svc.lookup(id).snap().Status
	}
	if st := status(second["id"]); st != "queued" {
		t.Fatalf("second scenario status = %q, want queued", st)
	}
	if st := status(first["id"]); st != "running" {
		t.Fatalf("first scenario status = %q, want running", st)
	}

	close(release)
	if id := <-started; id != second["id"] {
		t.Fatalf("admitted %q after release, want %q", id, second["id"])
	}
	svc.Close()
	if st := status(second["id"]); st != "done" {
		t.Fatalf("second scenario status = %q after drain, want done", st)
	}
}

func TestScenarioValidation(t *testing.T) {
	_, ts := startService(t)
	cases := []string{
		`{`,
		`{"testbed":"atlantis"}`,
		`{"testbed":"emulab","algorithm":"sgd"}`,
		`{"testbed":"emulab","agents":99}`,
		`{"testbed":"emulab","duration_seconds":5}`,
		`{"testbed":"emulab","max_concurrency":1}`,
	}
	for _, c := range cases {
		if code, _ := postScenario(t, ts.URL, c); code != http.StatusBadRequest {
			t.Errorf("payload %q: status %d, want 400", c, code)
		}
	}
}

func TestChartEndpoints(t *testing.T) {
	_, ts := startService(t)
	_, out := postScenario(t, ts.URL, `{"testbed":"emulab","duration_seconds":60}`)
	waitDone(t, ts.URL, out["id"])
	for _, kind := range []string{"throughput", "concurrency"} {
		resp, err := http.Get(fmt.Sprintf("%s/api/scenarios/%s/%s.svg", ts.URL, out["id"], kind))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", kind, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
			t.Fatalf("%s: content type %q", kind, ct)
		}
		svg := buf.String()
		if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "polyline") {
			t.Fatalf("%s: not a chart: %.120s", kind, svg)
		}
	}
}

func TestChartBeforeDoneConflicts(t *testing.T) {
	svc := NewWithLimit(1)
	release := make(chan struct{})
	started := make(chan struct{})
	svc.runFn = func(sc *Scenario) {
		close(started)
		<-release
		markDone(sc)
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		close(release)
		ts.Close()
		svc.Close()
	}()
	_, out := postScenario(t, ts.URL, `{"testbed":"emulab"}`)
	<-started
	resp, err := http.Get(ts.URL + "/api/scenarios/" + out["id"] + "/throughput.svg")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
}

func TestUnknownScenario404(t *testing.T) {
	_, ts := startService(t)
	resp, err := http.Get(ts.URL + "/api/scenarios/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestListScenarios pins the listing contract: every retained scenario
// appears exactly once, ordered deterministically by ID, and the
// response decodes as the same view the get endpoint serves.
func TestListScenarios(t *testing.T) {
	_, ts := startService(t)
	// Distinct seeds: three distinct simulations.
	for seed := 1; seed <= 3; seed++ {
		postScenario(t, ts.URL, fmt.Sprintf(`{"testbed":"emulab","duration_seconds":60,"seed":%d}`, seed))
	}
	resp, err := http.Get(ts.URL + "/api/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []scenarioView
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 3 {
		t.Fatalf("list has %d entries, want 3", len(list))
	}
	for i, sc := range list {
		want := fmt.Sprintf("s%04d", i+1)
		if sc.ID != want {
			t.Fatalf("list[%d].ID = %q, want %q (ID-ordered listing)", i, sc.ID, want)
		}
	}
}

func TestIndexPage(t *testing.T) {
	_, ts := startService(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "Falcon") {
		t.Fatal("index page missing title")
	}
}

func TestProgressEndpoint(t *testing.T) {
	_, ts := startService(t)
	_, out := postScenario(t, ts.URL, `{"testbed":"emulab","algorithm":"gd","duration_seconds":120}`)
	waitDone(t, ts.URL, out["id"])
	resp, err := http.Get(ts.URL + "/api/scenarios/" + out["id"] + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var p Progress
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Status != "done" {
		t.Fatalf("progress status = %q, want done", p.Status)
	}
	if len(p.Agents) != 1 {
		t.Fatalf("agents = %+v, want 1 entry", p.Agents)
	}
	a := p.Agents[0]
	// 120 simulated seconds at the default 5 s sample interval: dozens
	// of epochs, all folded live from the session event stream.
	if !a.Joined || a.Epochs < 10 || a.Concurrency < 1 || a.LastGbps <= 0 {
		t.Fatalf("implausible live progress: %+v", a)
	}
	if p.SimTime < 100 {
		t.Fatalf("sim_time = %v, want ≥100", p.SimTime)
	}

	// Unknown scenarios 404.
	resp2, err := http.Get(ts.URL + "/api/scenarios/ghost/progress")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost progress status = %d, want 404", resp2.StatusCode)
	}
}

// TestRound3 pins half-away-from-zero rounding to three decimals. The
// seed implementation truncated toward zero after adding 0.5, so every
// negative value mis-rounded (e.g. -0.0015 → 0.001 instead of -0.002).
func TestRound3(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{0.0004, 0},
		{0.0005, 0.001},
		{0.0014, 0.001},
		{0.0015, 0.002},
		{1.23456, 1.235},
		{9.7195, 9.72},
		{-0.0004, 0},
		{-0.0005, -0.001},
		{-0.0015, -0.002},
		{-1.23456, -1.235},
		{1234.5675, 1234.568},
	}
	for _, c := range cases {
		if got := round3(c.in); got != c.want {
			t.Errorf("round3(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestStoreEviction pins the bounded store: past the cap the oldest
// completed scenarios are evicted (404 afterwards), while queued and
// running scenarios are pinned even when the store overflows.
func TestStoreEviction(t *testing.T) {
	svc := NewWithOptions(Options{Workers: 1, StoreCap: 3})
	release := make(chan struct{})
	started := make(chan string, 8)
	svc.runFn = func(sc *Scenario) {
		started <- sc.ID
		<-release
		markDone(sc)
	}
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		svc.Close()
	}()

	// First submission occupies the single worker and stays "running"
	// (pinned). It must survive every later eviction.
	_, pinned := postScenario(t, ts.URL, `{"testbed":"emulab","seed":100}`)
	<-started

	// Five more distinct submissions: all queue behind the blocked
	// worker, so with a cap of 3 the store overflows with only pinned
	// (queued/running) scenarios — nothing may be evicted yet.
	var ids []string
	for seed := 101; seed <= 105; seed++ {
		_, out := postScenario(t, ts.URL, fmt.Sprintf(`{"testbed":"emulab","seed":%d}`, seed))
		ids = append(ids, out["id"])
	}
	if code, _ := getScenario(t, ts.URL, pinned["id"]); code != http.StatusOK {
		t.Fatalf("running scenario evicted while pinned (status %d)", code)
	}
	for _, id := range ids {
		if code, _ := getScenario(t, ts.URL, id); code != http.StatusOK {
			t.Fatalf("queued scenario %s evicted while pinned (status %d)", id, code)
		}
	}

	// Release the workers: all six complete, and subsequent insertions
	// trim the store back to the cap in creation order.
	close(release)
	for _, id := range append([]string{pinned["id"]}, ids...) {
		waitDone(t, ts.URL, id)
	}
	// One more completed submission triggers eviction of the oldest
	// done scenarios down to the cap.
	_, last := postScenario(t, ts.URL, `{"testbed":"emulab","seed":200}`)
	waitDone(t, ts.URL, last["id"])

	svc.mu.Lock()
	n := len(svc.order)
	svc.mu.Unlock()
	if n > 3 {
		t.Fatalf("store holds %d scenarios, want ≤ cap 3", n)
	}
	// The oldest (first) scenario must be gone, the newest present.
	if code, _ := getScenario(t, ts.URL, pinned["id"]); code != http.StatusNotFound {
		t.Fatalf("oldest completed scenario still present (status %d)", code)
	}
	if code, _ := getScenario(t, ts.URL, last["id"]); code != http.StatusOK {
		t.Fatalf("newest scenario missing (status %d)", code)
	}
	if got := svc.met.evictions.Load(); got == 0 {
		t.Fatal("eviction counter did not advance")
	}
}

// TestDrainRefusesNewScenarios: after BeginDrain the create endpoint
// answers 503 while reads keep working.
func TestDrainRefusesNewScenarios(t *testing.T) {
	svc, ts := startService(t)
	_, out := postScenario(t, ts.URL, `{"testbed":"emulab","duration_seconds":60}`)
	waitDone(t, ts.URL, out["id"])

	svc.BeginDrain()
	code, body := postScenario(t, ts.URL, `{"testbed":"emulab","seed":9}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("create during drain: status %d (%v), want 503", code, body)
	}
	if code, sc := getScenario(t, ts.URL, out["id"]); code != http.StatusOK || sc.Status != "done" {
		t.Fatalf("reads must keep working during drain: status %d, %+v", code, sc)
	}
}
