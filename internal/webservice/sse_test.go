package webservice

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes a stream until it closes, returning every event.
func readSSE(t *testing.T, resp *http.Response) []sseEvent {
	t.Helper()
	var events []sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	name := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			events = append(events, sseEvent{name: name, data: strings.TrimPrefix(line, "data: ")})
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("read SSE: %v", err)
	}
	return events
}

// TestSSEStreamMatchesPolledProgress is the streaming transparency
// contract: the SSE event feed, folded through the same fold as the
// server's tracker, reproduces the polled progress endpoint exactly —
// event for event, agent for agent — and the terminal "done" event
// carries the same body as the scenario GET.
func TestSSEStreamMatchesPolledProgress(t *testing.T) {
	_, ts := startService(t)
	_, out := postScenario(t, ts.URL, `{"testbed":"emulab","algorithm":"gd","duration_seconds":120}`)
	id := out["id"]

	// Open the stream while the scenario may still be running: the
	// stream replays retained records and follows live ones, so the
	// full feed arrives regardless of connect time.
	resp, err := http.Get(ts.URL + "/api/scenarios/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	events := readSSE(t, resp)
	resp.Body.Close()

	if len(events) < 2 {
		t.Fatalf("stream carried %d events, want records plus done", len(events))
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("stream ended with %q, want done", last.name)
	}

	// The done payload is byte-identical to the scenario's GET body.
	var streamed scenarioView
	if err := json.Unmarshal([]byte(last.data), &streamed); err != nil {
		t.Fatal(err)
	}
	getResp, err := http.Get(ts.URL + "/api/scenarios/" + id)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(getResp.Body)
	getResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(body)); got != last.data {
		t.Fatalf("done event body ≠ GET body:\n%s\nvs\n%s", last.data, got)
	}

	// Fold the streamed records; the result must equal the polled
	// progress view field for field.
	var recs []EventRecord
	for _, e := range events[:len(events)-1] {
		if e.name != "session" {
			t.Fatalf("unexpected event %q before done", e.name)
		}
		var rec EventRecord
		if err := json.Unmarshal([]byte(e.data), &rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	simTime, agents := foldRecords(recs)

	pollResp, err := http.Get(ts.URL + "/api/scenarios/" + id + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	var polled Progress
	err = json.NewDecoder(pollResp.Body).Decode(&polled)
	pollResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if polled.SimTime != simTime {
		t.Fatalf("folded sim_time %v ≠ polled %v", simTime, polled.SimTime)
	}
	if !reflect.DeepEqual(polled.Agents, agents) {
		t.Fatalf("folded agents ≠ polled agents:\n%+v\nvs\n%+v", agents, polled.Agents)
	}
	if polled.Status != streamed.Status {
		t.Fatalf("polled status %q ≠ streamed %q", polled.Status, streamed.Status)
	}
}

// TestSSECachedScenarioReplays: a cache-hit scenario's stream replays
// the original run's full feed and terminates with the hit's own done
// body (cached flag set).
func TestSSECachedScenarioReplays(t *testing.T) {
	_, ts := startService(t)
	req := `{"testbed":"emulab","algorithm":"gd","duration_seconds":60}`
	_, first := postScenario(t, ts.URL, req)
	waitDone(t, ts.URL, first["id"])
	_, second := postScenario(t, ts.URL, req)
	hit := waitDone(t, ts.URL, second["id"])
	if !hit.Cached {
		t.Fatal("second submission missed the cache")
	}

	stream := func(id string) []sseEvent {
		resp, err := http.Get(ts.URL + "/api/scenarios/" + id + "/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return readSSE(t, resp)
	}
	orig, cached := stream(first["id"]), stream(second["id"])
	if len(orig) != len(cached) {
		t.Fatalf("cached stream has %d events, original %d", len(cached), len(orig))
	}
	// Identical record sequence (the shared feed), distinct done body.
	for i := range orig[:len(orig)-1] {
		if orig[i] != cached[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, orig[i], cached[i])
		}
	}
	var done scenarioView
	if err := json.Unmarshal([]byte(cached[len(cached)-1].data), &done); err != nil {
		t.Fatal(err)
	}
	if !done.Cached || done.ID != second["id"] {
		t.Fatalf("cached done event: %+v", done)
	}
}

// TestDrainClosesSSEClients: BeginDrain while clients hold streams on
// a still-running scenario must terminate every stream promptly with a
// shutdown event; the scenario itself keeps running and Close drains
// it cleanly.
func TestDrainClosesSSEClients(t *testing.T) {
	svc := NewWithLimit(1)
	release := make(chan struct{})
	started := make(chan struct{})
	svc.runFn = func(sc *Scenario) {
		close(started)
		<-release
		markDone(sc)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	_, out := postScenario(t, ts.URL, `{"testbed":"emulab"}`)
	<-started

	const clients = 3
	type streamResult struct {
		events []sseEvent
	}
	results := make(chan streamResult, clients)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/api/scenarios/" + out["id"] + "/events")
			if err != nil {
				results <- streamResult{}
				return
			}
			defer resp.Body.Close()
			// Parse without t: Fatal must not be called off the test
			// goroutine.
			var events []sseEvent
			sc := bufio.NewScanner(resp.Body)
			name := ""
			for sc.Scan() {
				line := sc.Text()
				switch {
				case strings.HasPrefix(line, "event: "):
					name = strings.TrimPrefix(line, "event: ")
				case strings.HasPrefix(line, "data: "):
					events = append(events, sseEvent{name: name, data: strings.TrimPrefix(line, "data: ")})
				}
			}
			results <- streamResult{events: events}
		}()
	}
	// Let the clients attach (they block waiting for feed growth).
	deadline := time.Now().Add(5 * time.Second)
	for svc.met.sseClients.Load() < clients {
		if time.Now().After(deadline) {
			t.Fatalf("only %d SSE clients attached", svc.met.sseClients.Load())
		}
		time.Sleep(time.Millisecond)
	}

	svc.BeginDrain()
	for i := 0; i < clients; i++ {
		select {
		case r := <-results:
			if len(r.events) == 0 || r.events[len(r.events)-1].name != "shutdown" {
				t.Fatalf("client %d stream did not end with shutdown: %+v", i, r.events)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("SSE client still open 10s after BeginDrain")
		}
	}
	if got := svc.met.sseClients.Load(); got != 0 {
		t.Fatalf("sse client gauge = %d after drain, want 0", got)
	}

	// The running scenario was not killed by the drain: release it and
	// the service closes cleanly.
	close(release)
	svc.Close()
	if st := svc.lookup(out["id"]).snap(); st.Status != "done" {
		t.Fatalf("scenario after drain+close: %q, want done", st.Status)
	}
}
