package webservice

import (
	"fmt"
	"net/http"
	"testing"
)

// TestDocumentScenarioLifecycle: a full scenario document — roster plus
// a mutation schedule — POSTs through the same endpoint as flat
// requests and runs end to end.
func TestDocumentScenarioLifecycle(t *testing.T) {
	_, ts := startService(t)
	code, out := postScenario(t, ts.URL, `{"scenario": {
		"version": 1,
		"preset": "hpclab",
		"seed": 7,
		"duration_seconds": 240,
		"agents": [
			{"id": "main", "algorithm": "gd", "max_concurrency": 16},
			{"id": "late", "algorithm": "hc", "join_at": 60, "max_concurrency": 16}
		],
		"mutations": [
			{"at": 120, "kind": "link-capacity", "capacity": 5e9}
		]
	}}`)
	if code != http.StatusAccepted {
		t.Fatalf("status = %d, want 202 (%v)", code, out)
	}
	sc := waitDone(t, ts.URL, out["id"])
	if sc.Status != "done" {
		t.Fatalf("status = %s (%s)", sc.Status, sc.Error)
	}
	if len(sc.Results) != 2 {
		t.Fatalf("results = %+v, want 2 agents", sc.Results)
	}
	ids := map[string]bool{}
	for _, r := range sc.Results {
		ids[r.ID] = true
		if r.MeanGbps <= 0 {
			t.Errorf("agent %s mean = %v Gbps", r.ID, r.MeanGbps)
		}
	}
	if !ids["main"] || !ids["late"] {
		t.Fatalf("agent IDs from the document roster missing: %+v", sc.Results)
	}
}

// TestMutationScheduleNeverAliases is the cache regression for the
// scenario subsystem: two documents identical except for their mutation
// schedule must hash to different cache keys, run separately, and a
// byte-identical resubmission must hit the cache.
func TestMutationScheduleNeverAliases(t *testing.T) {
	_, ts := startService(t)
	base := `{"scenario": {"preset": "hpclab", "seed": 3, "duration_seconds": 180,
		"agents": [{"count": 2, "algorithm": "gd"}]%s}}`
	calm := fmt.Sprintf(base, ``)
	// hpclab's link is 40 Gbps with a ≈25.7 Gbps disk bottleneck, so the
	// wave must claim enough to push the link below the disk: 32 Gbps
	// leaves 8 Gbps for most of the measured second half.
	flap := fmt.Sprintf(base, `,
		"mutations": [{"at": 90, "kind": "cross-traffic", "rate": 32e9, "duration_seconds": 80}]`)

	_, out1 := postScenario(t, ts.URL, calm)
	sc1 := waitDone(t, ts.URL, out1["id"])
	if sc1.Status != "done" || sc1.Cached {
		t.Fatalf("calm run: status=%s cached=%v (%s)", sc1.Status, sc1.Cached, sc1.Error)
	}

	// Same document plus a mutation schedule: must not alias the calm
	// result. The 8 Gbps wave halves usable capacity for a third of the
	// run, so aliasing would also be visible in the means.
	_, out2 := postScenario(t, ts.URL, flap)
	sc2 := waitDone(t, ts.URL, out2["id"])
	if sc2.Status != "done" {
		t.Fatalf("flap run: %s (%s)", sc2.Status, sc2.Error)
	}
	if sc2.Cached {
		t.Fatal("document with a mutation schedule aliased the mutation-free cache entry")
	}
	var calmMean, flapMean float64
	for _, r := range sc1.Results {
		calmMean += r.MeanGbps
	}
	for _, r := range sc2.Results {
		flapMean += r.MeanGbps
	}
	if flapMean >= calmMean {
		t.Fatalf("cross-traffic wave did not cost throughput: calm %v vs flap %v Gbps", calmMean, flapMean)
	}

	// Byte-identical resubmission is the same simulation: cache hit.
	_, out3 := postScenario(t, ts.URL, flap)
	sc3 := waitDone(t, ts.URL, out3["id"])
	if !sc3.Cached {
		t.Fatal("identical resubmission missed the cache")
	}
	if sc3.JainIndex != sc2.JainIndex {
		t.Fatalf("cached Jain %v ≠ original %v", sc3.JainIndex, sc2.JainIndex)
	}
}

// TestFlatAndDocumentShareCache: a flat request and the document it
// lowers onto are the same simulation and deduplicate.
func TestFlatAndDocumentShareCache(t *testing.T) {
	_, ts := startService(t)
	_, out1 := postScenario(t, ts.URL,
		`{"testbed": "emulab", "algorithm": "gd", "duration_seconds": 120}`)
	sc1 := waitDone(t, ts.URL, out1["id"])
	if sc1.Status != "done" || sc1.Cached {
		t.Fatalf("flat run: status=%s cached=%v", sc1.Status, sc1.Cached)
	}
	// The document form of the same request — including the flat path's
	// defaults (seed 1, stagger 120, max_concurrency 64), which
	// normalise bakes into the lowered document.
	_, out2 := postScenario(t, ts.URL, `{"scenario": {"preset": "emulab", "seed": 1,
		"duration_seconds": 120,
		"agents": [{"algorithm": "gd", "join_stagger": 120, "max_concurrency": 64}]}}`)
	sc2 := waitDone(t, ts.URL, out2["id"])
	if sc2.Status != "done" {
		t.Fatalf("document run: %s (%s)", sc2.Status, sc2.Error)
	}
	if !sc2.Cached {
		t.Fatal("equivalent document form missed the flat request's cache entry")
	}
}

// TestDocumentValidation: malformed documents and flat/document mixing
// are rejected up front with 400, and service-level caps apply to
// documents.
func TestDocumentValidation(t *testing.T) {
	_, ts := startService(t)
	cases := []string{
		// Document plus flat fields.
		`{"testbed": "emulab", "scenario": {"preset": "emulab", "agents": [{}]}}`,
		// Invalid document (schema errors surface as 400).
		`{"scenario": {"preset": "atlantis", "agents": [{}]}}`,
		`{"scenario": {"preset": "emulab", "agents": []}}`,
		`{"scenario": {"preset": "emulab", "agents": [{}],
			"mutations": [{"at": -5, "kind": "rtt", "rtt": 0.1}]}}`,
		// Service caps: roster and duration bounds.
		`{"scenario": {"preset": "fleet", "agents": [{"count": 513}]}}`,
		`{"scenario": {"preset": "emulab", "duration_seconds": 86400, "agents": [{}]}}`,
	}
	for _, c := range cases {
		if code, out := postScenario(t, ts.URL, c); code != http.StatusBadRequest {
			t.Errorf("payload %.60s...: status %d (%v), want 400", c, code, out)
		}
	}
}
