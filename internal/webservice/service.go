// Package webservice implements the paper's §6 future work: a web
// service for deploying Falcon without local installation. Clients
// POST a scenario — either the legacy flat form (testbed, algorithm,
// number of competing agents) or a full declarative scenario document
// (see internal/scenario) with topology and a mutation schedule — and
// poll for JSON results and SVG timelines while the scenario runs in
// the background.
//
// The service runs scenarios on the simulated testbeds; the same API
// shape would front real transfers by swapping the scenario runner.
package webservice

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Service-level bounds on POSTed scenario documents, looser than the
// legacy flat-request bounds but still protecting the worker pool.
const (
	maxDocAgents   = 512
	maxDocDuration = 3600.0
)

// ScenarioRequest is the POST /api/scenarios payload. Either the flat
// legacy fields or Scenario may be used, not both; internally the flat
// form is lowered onto a scenario document, so both shapes run (and
// cache) through the same path.
type ScenarioRequest struct {
	// Testbed names the environment: emulab, emulab-1g, xsede, hpclab,
	// campus, wan, fleet.
	Testbed string `json:"testbed,omitempty"`
	// Algorithm is one of gd, bo, hc.
	Algorithm string `json:"algorithm,omitempty"`
	// Agents is the number of competing Falcon transfers (≥1).
	Agents int `json:"agents,omitempty"`
	// StaggerSeconds separates agent joins. Default 120 when Agents>1.
	StaggerSeconds float64 `json:"stagger_seconds,omitempty"`
	// DurationSeconds is the simulated horizon. Default 300.
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	// Seed makes runs reproducible. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// MaxConcurrency bounds the search space. Default 64.
	MaxConcurrency int `json:"max_concurrency,omitempty"`
	// Scenario is a full declarative scenario document (the
	// internal/scenario JSON schema), mutually exclusive with the flat
	// fields above.
	Scenario json.RawMessage `json:"scenario,omitempty"`

	// doc is the normalised document every accepted request lowers to.
	doc *scenario.Document
}

// normalise applies defaults, validates, and lowers the request onto a
// scenario document (stored in r.doc).
func (r *ScenarioRequest) normalise() error {
	if len(r.Scenario) > 0 {
		if r.Testbed != "" || r.Algorithm != "" || r.Agents != 0 || r.StaggerSeconds != 0 ||
			r.DurationSeconds != 0 || r.Seed != 0 || r.MaxConcurrency != 0 {
			return fmt.Errorf("scenario document and flat fields are mutually exclusive")
		}
		doc, err := scenario.Parse(r.Scenario)
		if err != nil {
			return err
		}
		if n := len(doc.AgentIDs()); n > maxDocAgents {
			return fmt.Errorf("scenario has %d agents; service accepts at most %d", n, maxDocAgents)
		}
		if doc.DurationSeconds > maxDocDuration {
			return fmt.Errorf("scenario duration %gs exceeds the service cap %gs", doc.DurationSeconds, maxDocDuration)
		}
		r.doc = doc
		return nil
	}
	if r.Agents == 0 {
		r.Agents = 1
	}
	if r.Agents < 1 || r.Agents > 8 {
		return fmt.Errorf("agents %d outside [1,8]", r.Agents)
	}
	if r.StaggerSeconds == 0 {
		r.StaggerSeconds = 120
	}
	if r.StaggerSeconds < 0 {
		return fmt.Errorf("negative stagger")
	}
	if r.DurationSeconds == 0 {
		r.DurationSeconds = 300
	}
	if r.DurationSeconds < 30 || r.DurationSeconds > 3600 {
		return fmt.Errorf("duration %v outside [30,3600]", r.DurationSeconds)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.MaxConcurrency == 0 {
		r.MaxConcurrency = 64
	}
	if r.MaxConcurrency < 2 || r.MaxConcurrency > 200 {
		return fmt.Errorf("max_concurrency %d outside [2,200]", r.MaxConcurrency)
	}
	switch r.Algorithm {
	case core.AlgoGradient, core.AlgoBayesian, core.AlgoHillClimbing:
	case "":
		r.Algorithm = core.AlgoGradient
	default:
		return fmt.Errorf("unknown algorithm %q", r.Algorithm)
	}
	if _, ok := scenario.PresetConfig(r.Testbed); !ok {
		return fmt.Errorf("unknown testbed %q", r.Testbed)
	}
	// Lower the flat request onto a document. One unnamed spec with
	// Count expands to agents "agent1".."agentN" seeded Seed+i with
	// default initial knobs and private per-agent datasets — exactly
	// the participants the service built before it spoke documents.
	doc := &scenario.Document{
		Version:         scenario.Version,
		Preset:          r.Testbed,
		Seed:            r.Seed,
		DurationSeconds: r.DurationSeconds,
		Agents: []scenario.AgentSpec{{
			Count:          r.Agents,
			Algorithm:      r.Algorithm,
			JoinStagger:    r.StaggerSeconds,
			MaxConcurrency: r.MaxConcurrency,
		}},
	}
	if err := doc.Normalise(); err != nil {
		return err
	}
	r.doc = doc
	return nil
}

// AgentResult summarises one agent's outcome.
type AgentResult struct {
	ID              string  `json:"id"`
	MeanGbps        float64 `json:"mean_gbps"`
	MeanConcurrency float64 `json:"mean_concurrency"`
}

// Scenario is the stored state of one submitted run.
type Scenario struct {
	ID      string          `json:"id"`
	Request ScenarioRequest `json:"request"`
	// Status is "queued", "running", "done", or "failed". A scenario is
	// queued between acceptance and admission to the bounded worker
	// pool.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Results are per-agent summaries over the second half of the run.
	Results []AgentResult `json:"results,omitempty"`
	// JainIndex is the fairness of the per-agent means (1 agent → 1).
	JainIndex float64 `json:"jain_index,omitempty"`
	// Cached marks results served from the content-addressed cache:
	// an identical earlier request already ran this exact simulation,
	// so the stored outcome was reused without re-running it.
	Cached bool `json:"cached,omitempty"`

	timeline *testbed.Timeline
	progress *progressTracker
}

// Service is the HTTP handler set with its scenario store.
type Service struct {
	mu    sync.Mutex
	next  int
	store map[string]*Scenario
	// wg tracks background runs so Close can drain them.
	wg sync.WaitGroup
	// sem bounds the number of scenarios simulating at once; accepted
	// scenarios beyond the limit wait in "queued" until a slot frees.
	sem chan struct{}
	// runFn executes one admitted scenario (swapped out by tests).
	runFn func(*Scenario)
	// cache holds completed scenarios content-addressed by their
	// normalised request, so repeat submissions are answered without
	// re-simulating.
	cache *resultCache
}

// New returns an empty service whose worker pool admits one concurrent
// scenario per CPU.
func New() *Service {
	return NewWithLimit(runtime.GOMAXPROCS(0))
}

// NewWithLimit returns an empty service that simulates at most limit
// scenarios concurrently (minimum 1). Submissions are never rejected
// for load: past the limit they queue in acceptance order.
func NewWithLimit(limit int) *Service {
	if limit < 1 {
		limit = 1
	}
	s := &Service{
		store: make(map[string]*Scenario),
		sem:   make(chan struct{}, limit),
		cache: newResultCache(defaultCacheSize),
	}
	s.runFn = s.run
	return s
}

// Close waits for in-flight scenario runs to finish.
func (s *Service) Close() { s.wg.Wait() }

// Handler returns the service's HTTP routes.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("POST /api/scenarios", s.handleCreate)
	mux.HandleFunc("GET /api/scenarios", s.handleList)
	mux.HandleFunc("GET /api/scenarios/{id}", s.handleGet)
	mux.HandleFunc("GET /api/scenarios/{id}/progress", s.handleProgress)
	mux.HandleFunc("GET /api/scenarios/{id}/throughput.svg", s.chartHandler("throughput"))
	mux.HandleFunc("GET /api/scenarios/{id}/concurrency.svg", s.chartHandler("concurrency"))
	return mux
}

func (s *Service) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><title>Falcon service</title>
<h1>Falcon transfer-optimization service</h1>
<p>POST JSON to <code>/api/scenarios</code>, e.g.
<pre>{"testbed":"hpclab","algorithm":"gd","agents":3}</pre>
then GET <code>/api/scenarios/{id}</code> for results,
<code>/api/scenarios/{id}/progress</code> for live per-agent status while
it runs, and <code>/api/scenarios/{id}/throughput.svg</code> for the
timeline.</p>`)
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req ScenarioRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if err := req.normalise(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid scenario: %v", err)
		return
	}
	key, err := cacheKey(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid scenario: %v", err)
		return
	}
	s.mu.Lock()
	s.next++
	id := fmt.Sprintf("s%04d", s.next)
	if hit, ok := s.cache.get(key); ok {
		// The simulation is a pure function of the normalised request,
		// so the stored outcome is exactly what a re-run would produce.
		sc := &Scenario{
			ID: id, Request: req, Status: "done", Cached: true,
			Results: hit.Results, JainIndex: hit.JainIndex,
			timeline: hit.timeline, progress: hit.progress,
		}
		s.store[id] = sc
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id})
		return
	}
	sc := &Scenario{ID: id, Request: req, Status: "queued", progress: newProgressTracker()}
	s.store[id] = sc
	s.mu.Unlock()

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		s.mu.Lock()
		sc.Status = "running"
		s.mu.Unlock()
		s.runFn(sc)
		s.mu.Lock()
		if sc.Status == "done" {
			s.cache.put(key, sc)
		}
		s.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]string{"id": id})
}

// run executes the scenario synchronously and stores the outcome.
// Every request — flat or document — runs through scenario.Build and
// Run.Execute, so dynamic scenarios with mutation schedules take the
// same path as the legacy flat form.
func (s *Service) run(sc *Scenario) {
	doc := sc.Request.doc
	run, err := doc.Build()
	if err != nil {
		s.fail(sc, err)
		return
	}
	tl, err := run.Execute(scenario.ExecOptions{Events: sc.progress.Sink()})
	if err != nil {
		s.fail(sc, err)
		return
	}

	var results []AgentResult
	var shares []float64
	for _, id := range run.AgentIDs {
		mean := tl.MeanThroughputGbps(id, doc.DurationSeconds/2, doc.DurationSeconds)
		cc := 0.0
		if series := tl.Concurrency.Lookup(id); series != nil {
			cc = series.MeanAfter(doc.DurationSeconds / 2)
		}
		results = append(results, AgentResult{ID: id, MeanGbps: round3(mean), MeanConcurrency: round3(cc)})
		shares = append(shares, mean)
	}
	s.mu.Lock()
	sc.Status = "done"
	sc.Results = results
	sc.JainIndex = round3(stats.JainIndex(shares))
	sc.timeline = tl
	s.mu.Unlock()
}

func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }

func (s *Service) fail(sc *Scenario, err error) {
	s.mu.Lock()
	sc.Status = "failed"
	sc.Error = err.Error()
	s.mu.Unlock()
}

func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]*Scenario, 0, len(s.store))
	for _, sc := range s.store {
		out = append(out, sc)
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	sc := s.lookup(r.PathValue("id"))
	if sc == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.mu.Lock()
	defer s.mu.Unlock()
	json.NewEncoder(w).Encode(sc)
}

func (s *Service) chartHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sc := s.lookup(r.PathValue("id"))
		if sc == nil {
			http.NotFound(w, r)
			return
		}
		s.mu.Lock()
		tl := sc.timeline
		status := sc.Status
		s.mu.Unlock()
		if tl == nil {
			httpError(w, http.StatusConflict, "scenario is %s; charts appear when it is done", status)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml")
		var err error
		switch kind {
		case "throughput":
			err = tl.Throughput.WriteSVG(w, 720, 320, fmt.Sprintf("%s — throughput (Gbps)", sc.ID))
		default:
			err = tl.Concurrency.WriteSVG(w, 720, 320, fmt.Sprintf("%s — concurrency", sc.ID))
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, "render: %v", err)
		}
	}
}

func (s *Service) lookup(id string) *Scenario {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id = strings.TrimSpace(id); id == "" {
		return nil
	}
	return s.store[id]
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
