// Package webservice implements the paper's §6 future work: a web
// service for deploying Falcon without local installation. Clients
// POST a scenario — either the legacy flat form (testbed, algorithm,
// number of competing agents) or a full declarative scenario document
// (see internal/scenario) with topology and a mutation schedule — and
// read JSON results, live progress (polled or streamed over SSE), and
// SVG timelines while the scenario runs in the background.
//
// The serving path is built for production load in front of the
// allocation-free simulator:
//
//   - Scenario state is published as immutable snapshots through an
//     atomic pointer. The JSON body is rendered once per state
//     transition and served many times with zero marshaling; no lock
//     is held while writing to sockets.
//   - Concurrent submissions with the same content-addressed cache key
//     coalesce onto a single in-flight simulation (single-flight): one
//     leader runs, every waiter observes the identical published
//     result, and completed results land in the LRU cache for later
//     identical submissions.
//   - GET /metrics exposes Prometheus-text counters, gauges, and a
//     latency histogram with no client-library dependency.
//   - The store is bounded: past the cap, the oldest completed
//     scenarios are evicted (queued/running stay pinned).
//   - BeginDrain stops new submissions and closes SSE streams so the
//     process can shut down cleanly once running scenarios finish.
//
// The service runs scenarios on the simulated testbeds; the same API
// shape would front real transfers by swapping the scenario runner.
package webservice

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/testbed"
)

// Service-level bounds on POSTed scenario documents, looser than the
// legacy flat-request bounds but still protecting the worker pool.
const (
	maxDocAgents   = 512
	maxDocDuration = 3600.0
)

// DefaultStoreCap bounds the number of scenarios retained in the store
// when no explicit cap is configured. Past the cap the oldest
// completed scenarios are evicted; queued and running scenarios are
// never evicted.
const DefaultStoreCap = 4096

// ScenarioRequest is the POST /api/scenarios payload. Either the flat
// legacy fields or Scenario may be used, not both; internally the flat
// form is lowered onto a scenario document, so both shapes run (and
// cache) through the same path.
type ScenarioRequest struct {
	// Testbed names the environment: emulab, emulab-1g, xsede, hpclab,
	// campus, wan, fleet.
	Testbed string `json:"testbed,omitempty"`
	// Algorithm is one of gd, bo, hc.
	Algorithm string `json:"algorithm,omitempty"`
	// Agents is the number of competing Falcon transfers (≥1).
	Agents int `json:"agents,omitempty"`
	// StaggerSeconds separates agent joins. Default 120 when Agents>1.
	StaggerSeconds float64 `json:"stagger_seconds,omitempty"`
	// DurationSeconds is the simulated horizon. Default 300.
	DurationSeconds float64 `json:"duration_seconds,omitempty"`
	// Seed makes runs reproducible. Default 1.
	Seed int64 `json:"seed,omitempty"`
	// MaxConcurrency bounds the search space. Default 64.
	MaxConcurrency int `json:"max_concurrency,omitempty"`
	// Scenario is a full declarative scenario document (the
	// internal/scenario JSON schema), mutually exclusive with the flat
	// fields above.
	Scenario json.RawMessage `json:"scenario,omitempty"`

	// doc is the normalised document every accepted request lowers to.
	doc *scenario.Document
}

// normalise applies defaults, validates, and lowers the request onto a
// scenario document (stored in r.doc).
func (r *ScenarioRequest) normalise() error {
	if len(r.Scenario) > 0 {
		if r.Testbed != "" || r.Algorithm != "" || r.Agents != 0 || r.StaggerSeconds != 0 ||
			r.DurationSeconds != 0 || r.Seed != 0 || r.MaxConcurrency != 0 {
			return fmt.Errorf("scenario document and flat fields are mutually exclusive")
		}
		doc, err := scenario.Parse(r.Scenario)
		if err != nil {
			return err
		}
		if n := len(doc.AgentIDs()); n > maxDocAgents {
			return fmt.Errorf("scenario has %d agents; service accepts at most %d", n, maxDocAgents)
		}
		if doc.DurationSeconds > maxDocDuration {
			return fmt.Errorf("scenario duration %gs exceeds the service cap %gs", doc.DurationSeconds, maxDocDuration)
		}
		r.doc = doc
		return nil
	}
	if r.Agents == 0 {
		r.Agents = 1
	}
	if r.Agents < 1 || r.Agents > 8 {
		return fmt.Errorf("agents %d outside [1,8]", r.Agents)
	}
	if r.StaggerSeconds == 0 {
		r.StaggerSeconds = 120
	}
	if r.StaggerSeconds < 0 {
		return fmt.Errorf("negative stagger")
	}
	if r.DurationSeconds == 0 {
		r.DurationSeconds = 300
	}
	if r.DurationSeconds < 30 || r.DurationSeconds > 3600 {
		return fmt.Errorf("duration %v outside [30,3600]", r.DurationSeconds)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.MaxConcurrency == 0 {
		r.MaxConcurrency = 64
	}
	if r.MaxConcurrency < 2 || r.MaxConcurrency > 200 {
		return fmt.Errorf("max_concurrency %d outside [2,200]", r.MaxConcurrency)
	}
	switch r.Algorithm {
	case core.AlgoGradient, core.AlgoBayesian, core.AlgoHillClimbing:
	case "":
		r.Algorithm = core.AlgoGradient
	default:
		return fmt.Errorf("unknown algorithm %q", r.Algorithm)
	}
	if _, ok := scenario.PresetConfig(r.Testbed); !ok {
		return fmt.Errorf("unknown testbed %q", r.Testbed)
	}
	// Lower the flat request onto a document. One unnamed spec with
	// Count expands to agents "agent1".."agentN" seeded Seed+i with
	// default initial knobs and private per-agent datasets — exactly
	// the participants the service built before it spoke documents.
	doc := &scenario.Document{
		Version:         scenario.Version,
		Preset:          r.Testbed,
		Seed:            r.Seed,
		DurationSeconds: r.DurationSeconds,
		Agents: []scenario.AgentSpec{{
			Count:          r.Agents,
			Algorithm:      r.Algorithm,
			JoinStagger:    r.StaggerSeconds,
			MaxConcurrency: r.MaxConcurrency,
		}},
	}
	if err := doc.Normalise(); err != nil {
		return err
	}
	r.doc = doc
	return nil
}

// AgentResult summarises one agent's outcome.
type AgentResult struct {
	ID              string  `json:"id"`
	MeanGbps        float64 `json:"mean_gbps"`
	MeanConcurrency float64 `json:"mean_concurrency"`
}

// scenarioState is one immutable published state of a scenario. A
// state is never mutated after publish: transitions copy the current
// state, adjust it, render the JSON body once, and atomically swap the
// pointer. Readers load the pointer and serve the pre-rendered body
// with no lock and no marshaling.
type scenarioState struct {
	Status    string
	Err       string
	Results   []AgentResult
	JainIndex float64
	Cached    bool
	Coalesced bool

	timeline *testbed.Timeline
	// body is the rendered JSON of the scenario's API view.
	body []byte
}

func (st *scenarioState) terminal() bool { return st.Status == "done" || st.Status == "failed" }

// scenarioView is the JSON shape of one scenario in the API.
type scenarioView struct {
	ID        string           `json:"id"`
	Request   *ScenarioRequest `json:"request"`
	Status    string           `json:"status"`
	Error     string           `json:"error,omitempty"`
	Results   []AgentResult    `json:"results,omitempty"`
	JainIndex float64          `json:"jain_index,omitempty"`
	// Cached marks results served from the content-addressed cache:
	// an identical earlier request already ran this exact simulation,
	// so the stored outcome was reused without re-running it.
	Cached bool `json:"cached,omitempty"`
	// Coalesced marks results obtained by attaching to another
	// request's identical in-flight simulation (single-flight): the
	// simulation ran exactly once and every attached request observed
	// the same published result.
	Coalesced bool `json:"coalesced,omitempty"`
}

// Scenario is the stored state of one submitted run. The identity
// fields (ID, Request, progress) are immutable after creation; the
// mutable run state lives behind the atomic snapshot pointer.
type Scenario struct {
	ID string
	// seq is the creation sequence number; the listing is ordered by it.
	seq int
	// key is the content-addressed cache key of the normalised request.
	key     string
	Request ScenarioRequest

	// progress retains the run's event feed (shared with coalesced
	// waiters and cache hits, which observe the original run's feed).
	progress *progressTracker

	state atomic.Pointer[scenarioState]
	// done is closed on the first terminal publish.
	done     chan struct{}
	doneOnce sync.Once
}

// snap returns the current immutable state.
func (sc *Scenario) snap() *scenarioState { return sc.state.Load() }

// publish renders the JSON body for st and atomically installs it as
// the scenario's current state.
func (sc *Scenario) publish(st scenarioState) {
	body, err := json.Marshal(scenarioView{
		ID: sc.ID, Request: &sc.Request, Status: st.Status, Error: st.Err,
		Results: st.Results, JainIndex: st.JainIndex, Cached: st.Cached, Coalesced: st.Coalesced,
	})
	if err != nil {
		// The view contains only marshalable fields; this is unreachable
		// but kept observable rather than silent.
		body = []byte(fmt.Sprintf(`{"id":%q,"status":"failed","error":"render: %v"}`, sc.ID, err))
		st.Status = "failed"
	}
	st.body = body
	sc.state.Store(&st)
	if st.terminal() {
		sc.doneOnce.Do(func() { close(sc.done) })
	}
}

// flight is one in-flight simulation that identical concurrent
// submissions attach to. The leader runs; waiters are resolved from
// the leader's final state when it completes.
type flight struct {
	leader  *Scenario
	waiters []*Scenario
}

// Options configures a Service.
type Options struct {
	// Workers bounds concurrent simulations (default GOMAXPROCS).
	Workers int
	// StoreCap bounds retained scenarios (default DefaultStoreCap).
	StoreCap int
	// CacheSize bounds the content-addressed result cache (default 64).
	CacheSize int
}

// Service is the HTTP handler set with its scenario store.
type Service struct {
	// mu guards the creation path: id sequence, order slice, in-flight
	// map, and result cache. The read path (get/list/progress/charts/
	// SSE/metrics) does not take it except for the brief order copy in
	// list and metrics.
	mu       sync.Mutex
	next     int
	order    []*Scenario
	inflight map[string]*flight
	cache    *resultCache
	storeCap int

	// store is the id → *Scenario index; reads are lock-free.
	store sync.Map

	// wg tracks background runs so Close can drain them.
	wg sync.WaitGroup
	// sem bounds the number of scenarios simulating at once; accepted
	// scenarios beyond the limit wait in "queued" until a slot frees.
	sem chan struct{}
	// runFn executes one admitted scenario (swapped out by tests).
	runFn func(*Scenario)

	met metricsRegistry

	// draining is closed by BeginDrain: new submissions are refused
	// and SSE streams close.
	draining  chan struct{}
	drainOnce sync.Once
}

// New returns an empty service whose worker pool admits one concurrent
// scenario per CPU.
func New() *Service {
	return NewWithOptions(Options{})
}

// NewWithLimit returns an empty service that simulates at most limit
// scenarios concurrently (minimum 1). Submissions are never rejected
// for load: past the limit they queue in acceptance order.
func NewWithLimit(limit int) *Service {
	return NewWithOptions(Options{Workers: limit})
}

// NewWithOptions returns an empty service configured by opts; zero
// fields take their defaults.
func NewWithOptions(opts Options) *Service {
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0)
		if opts.Workers < 1 {
			opts.Workers = 1
		}
	}
	if opts.StoreCap < 1 {
		opts.StoreCap = DefaultStoreCap
	}
	if opts.CacheSize < 1 {
		opts.CacheSize = defaultCacheSize
	}
	s := &Service{
		inflight: make(map[string]*flight),
		cache:    newResultCache(opts.CacheSize),
		storeCap: opts.StoreCap,
		sem:      make(chan struct{}, opts.Workers),
		draining: make(chan struct{}),
	}
	s.met.workerLimit = int64(opts.Workers)
	s.runFn = s.run
	return s
}

// Close waits for in-flight scenario runs to finish.
func (s *Service) Close() { s.wg.Wait() }

// BeginDrain moves the service into drain mode: new scenario
// submissions are refused with 503 and open SSE streams are closed
// with a shutdown event. Already-accepted scenarios keep running;
// Close still waits for them. Safe to call more than once.
func (s *Service) BeginDrain() {
	s.drainOnce.Do(func() { close(s.draining) })
}

// Draining reports whether BeginDrain has been called.
func (s *Service) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Handler returns the service's HTTP routes, each instrumented with
// request counting and latency observation under its route pattern.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, rt := range []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"GET /", s.handleIndex},
		{"GET /metrics", s.handleMetrics},
		{"POST /api/scenarios", s.handleCreate},
		{"GET /api/scenarios", s.handleList},
		{"GET /api/scenarios/{id}", s.handleGet},
		{"GET /api/scenarios/{id}/progress", s.handleProgress},
		{"GET /api/scenarios/{id}/events", s.handleEvents},
		{"GET /api/scenarios/{id}/throughput.svg", s.chartHandler("throughput")},
		{"GET /api/scenarios/{id}/concurrency.svg", s.chartHandler("concurrency")},
	} {
		mux.HandleFunc(rt.pattern, s.instrument(rt.pattern, rt.h))
	}
	return mux
}

func (s *Service) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, `<!doctype html><title>Falcon service</title>
<h1>Falcon transfer-optimization service</h1>
<p>POST JSON to <code>/api/scenarios</code>, e.g.
<pre>{"testbed":"hpclab","algorithm":"gd","agents":3}</pre>
then GET <code>/api/scenarios/{id}</code> for results,
<code>/api/scenarios/{id}/progress</code> for live per-agent status while
it runs, <code>/api/scenarios/{id}/events</code> for the same feed as a
server-sent-event stream, <code>/api/scenarios/{id}/throughput.svg</code>
for the timeline, and <code>/metrics</code> for Prometheus-text service
metrics (request rates, latency, cache and coalesce hit counts).</p>`)
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		httpError(w, http.StatusServiceUnavailable, "service is draining")
		return
	}
	var req ScenarioRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	if err := req.normalise(); err != nil {
		httpError(w, http.StatusBadRequest, "invalid scenario: %v", err)
		return
	}
	key, err := cacheKey(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid scenario: %v", err)
		return
	}

	s.mu.Lock()
	s.next++
	sc := &Scenario{
		ID:      fmt.Sprintf("s%04d", s.next),
		seq:     s.next,
		key:     key,
		Request: req,
		done:    make(chan struct{}),
	}

	if hit, ok := s.cache.get(key); ok {
		// The simulation is a pure function of the normalised request,
		// so the stored outcome is exactly what a re-run would produce.
		s.met.cacheHits.Add(1)
		sc.progress = hit.progress
		sc.publish(scenarioState{
			Status: "done", Cached: true,
			Results: hit.results, JainIndex: hit.jain, timeline: hit.timeline,
		})
		s.insertLocked(sc)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, map[string]string{"id": sc.ID})
		return
	}
	s.met.cacheMisses.Add(1)

	if fl, ok := s.inflight[key]; ok {
		// Single-flight: an identical simulation is already in flight.
		// Attach as a waiter — share the leader's live event feed now,
		// observe its published result on completion. Exactly one
		// simulation runs no matter how many identical requests arrive
		// concurrently.
		s.met.coalesceHits.Add(1)
		sc.progress = fl.leader.progress
		fl.waiters = append(fl.waiters, sc)
		sc.publish(scenarioState{Status: fl.leader.snap().Status, Coalesced: true})
		s.insertLocked(sc)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, map[string]string{"id": sc.ID})
		return
	}

	// Leader: owns the flight and the actual run.
	fl := &flight{leader: sc}
	s.inflight[key] = fl
	sc.progress = newProgressTracker()
	sc.publish(scenarioState{Status: "queued"})
	s.insertLocked(sc)
	s.mu.Unlock()

	s.wg.Add(1)
	go s.execute(sc, fl)
	writeJSON(w, http.StatusAccepted, map[string]string{"id": sc.ID})
}

// execute admits the leader to the worker pool, runs it, resolves the
// flight (cache fill + waiter publication), and maintains the pool
// gauges.
func (s *Service) execute(sc *Scenario, fl *flight) {
	defer s.wg.Done()
	s.met.queueDepth.Add(1)
	s.sem <- struct{}{}
	s.met.queueDepth.Add(-1)
	s.met.workersBusy.Add(1)
	defer func() {
		<-s.sem
		s.met.workersBusy.Add(-1)
	}()

	st := *sc.snap()
	st.Status = "running"
	sc.publish(st)
	s.runFn(sc)
	s.met.simulations.Add(1)

	final := sc.snap()
	s.mu.Lock()
	delete(s.inflight, sc.key)
	if final.Status == "done" {
		s.cache.put(sc.key, &resultValue{
			results: final.Results, jain: final.JainIndex,
			timeline: final.timeline, progress: sc.progress,
		})
	}
	waiters := fl.waiters
	fl.waiters = nil
	s.mu.Unlock()

	// Resolve waiters outside the lock: each publication is an atomic
	// snapshot swap, and no new waiter can attach once the flight is
	// out of the in-flight map. Waiters share the leader's Results
	// slice and timeline, so all observers see bitwise-identical data.
	for _, w := range waiters {
		w.publish(scenarioState{
			Status: final.Status, Err: final.Err,
			Results: final.Results, JainIndex: final.JainIndex,
			Coalesced: true, timeline: final.timeline,
		})
	}
}

// insertLocked adds sc to the store and the creation-ordered slice,
// then enforces the store cap by evicting the oldest completed
// scenarios. Queued and running scenarios are pinned: if every retained
// scenario is still active the store temporarily exceeds the cap
// rather than dropping live state. Callers hold s.mu.
func (s *Service) insertLocked(sc *Scenario) {
	s.store.Store(sc.ID, sc)
	s.order = append(s.order, sc)
	for len(s.order) > s.storeCap {
		evicted := false
		for i, old := range s.order {
			if old.snap().terminal() {
				s.store.Delete(old.ID)
				s.order = append(s.order[:i], s.order[i+1:]...)
				s.met.evictions.Add(1)
				evicted = true
				break
			}
		}
		if !evicted {
			break
		}
	}
}

// run executes the scenario synchronously and publishes the outcome.
// Every request — flat or document — runs through scenario.Build and
// Run.Execute, so dynamic scenarios with mutation schedules take the
// same path as the legacy flat form.
func (s *Service) run(sc *Scenario) {
	doc := sc.Request.doc
	run, err := doc.Build()
	if err != nil {
		s.fail(sc, err)
		return
	}
	tl, err := run.Execute(scenario.ExecOptions{Events: sc.progress.Sink()})
	if err != nil {
		s.fail(sc, err)
		return
	}

	var results []AgentResult
	var shares []float64
	for _, id := range run.AgentIDs {
		mean := tl.MeanThroughputGbps(id, doc.DurationSeconds/2, doc.DurationSeconds)
		cc := 0.0
		if series := tl.Concurrency.Lookup(id); series != nil {
			cc = series.MeanAfter(doc.DurationSeconds / 2)
		}
		results = append(results, AgentResult{ID: id, MeanGbps: round3(mean), MeanConcurrency: round3(cc)})
		shares = append(shares, mean)
	}
	sc.progress.finish()
	sc.publish(scenarioState{
		Status: "done", Results: results,
		JainIndex: round3(stats.JainIndex(shares)), timeline: tl,
	})
}

// round3 rounds to three decimals (half away from zero, so negative
// values round symmetrically to positive ones).
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

func (s *Service) fail(sc *Scenario, err error) {
	sc.progress.finish()
	sc.publish(scenarioState{Status: "failed", Err: err.Error()})
}

// handleList writes every retained scenario ordered by ID (creation
// sequence), concatenating the pre-rendered snapshot bodies. The lock
// covers only the order-slice copy; encoding work and socket writes
// happen outside it.
func (s *Service) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	scs := append([]*Scenario(nil), s.order...)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("["))
	for i, sc := range scs {
		if i > 0 {
			w.Write([]byte(","))
		}
		w.Write(sc.snap().body)
	}
	w.Write([]byte("]\n"))
}

// handleGet serves the scenario's pre-rendered snapshot body: one
// atomic load, zero marshaling, no lock.
func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	sc := s.lookup(r.PathValue("id"))
	if sc == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(sc.snap().body)
	w.Write([]byte("\n"))
}

func (s *Service) chartHandler(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sc := s.lookup(r.PathValue("id"))
		if sc == nil {
			http.NotFound(w, r)
			return
		}
		st := sc.snap()
		if st.timeline == nil {
			httpError(w, http.StatusConflict, "scenario is %s; charts appear when it is done", st.Status)
			return
		}
		// The timeline is immutable once published, so rendering needs
		// no lock.
		w.Header().Set("Content-Type", "image/svg+xml")
		var err error
		switch kind {
		case "throughput":
			err = st.timeline.Throughput.WriteSVG(w, 720, 320, fmt.Sprintf("%s — throughput (Gbps)", sc.ID))
		default:
			err = st.timeline.Concurrency.WriteSVG(w, 720, 320, fmt.Sprintf("%s — concurrency", sc.ID))
		}
		if err != nil {
			httpError(w, http.StatusInternalServerError, "render: %v", err)
		}
	}
}

// lookup resolves a scenario ID without taking the service lock.
func (s *Service) lookup(id string) *Scenario {
	if id = strings.TrimSpace(id); id == "" {
		return nil
	}
	v, ok := s.store.Load(id)
	if !ok {
		return nil
	}
	return v.(*Scenario)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}
