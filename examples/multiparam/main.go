// Multi-parameter optimization (§4.4): tuning concurrency, parallelism,
// and pipelining together on a long-fat WAN.
//
// The Stampede2–Comet path (40 Gbps, 60 ms) makes single TCP streams
// window-bound (parallelism helps large files) and per-file command
// round trips expensive (pipelining helps small files). Falcon_MP uses
// the Eq 7 utility and conjugate gradient descent to tune all three
// knobs for the paper's "mixed" dataset, compared against
// concurrency-only Falcon. Run with:
//
//	go run ./examples/multiparam
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

func run(label string, ctrl testbed.Controller, initial transfer.Setting, ds *dataset.Dataset) float64 {
	cfg := testbed.StampedeCometWAN()
	eng, err := testbed.NewEngine(cfg, 11)
	if err != nil {
		log.Fatal(err)
	}
	task, err := transfer.NewTask(label, ds, initial)
	if err != nil {
		log.Fatal(err)
	}
	sched := testbed.NewScheduler(eng, 1)
	if err := sched.Add(testbed.Participant{Task: task, Controller: ctrl}); err != nil {
		log.Fatal(err)
	}
	tl := sched.Run(420, 0.25)
	tput := tl.MeanThroughputGbps(label, 150, 420)
	cc := tl.Concurrency.Lookup(label).MeanAfter(150)
	fmt.Printf("%-10s mean concurrency %4.1f → %5.2f Gbps\n", label, cc, tput)
	return tput
}

func main() {
	ds := dataset.Mixed(3)
	fmt.Printf("dataset %q: %d files, %.2f TiB, median file %.1f MiB\n\n",
		ds.Label, ds.Count(), float64(ds.TotalBytes())/float64(dataset.TiB),
		float64(ds.MedianFileSize())/float64(dataset.MiB))

	single := run("falcon", core.NewGDAgent(32),
		transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1}, ds)
	multi := run("falcon-mp", core.NewDefaultMultiAgent(32, 8, 32),
		transfer.Setting{Concurrency: 2, Parallelism: 2, Pipelining: 2}, ds)

	fmt.Printf("\nmulti-parameter gain: %+.0f%% (paper: up to +30%% for small/mixed datasets)\n",
		100*(multi/single-1))
}
