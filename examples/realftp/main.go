// Real sockets: Falcon tuning a live TCP transfer over loopback.
//
// A server and client from internal/ftp move 1500 × 1 MiB synthetic
// files over real TCP connections. Each file's send rate is throttled
// to 60 Mbps — the per-process I/O cap of a parallel file system — so
// one file at a time cannot use the machine, and a Falcon-GD agent
// discovers how many concurrent files to run. Run with:
//
//	go run ./examples/realftp
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ftp"
	"repro/internal/transfer"
)

func main() {
	sink := &ftp.DiscardSink{}
	srv := &ftp.Server{Sink: sink}
	if err := srv.Serve("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server listening on %s\n", srv.Addr())

	files := make([]dataset.File, 1500)
	for i := range files {
		files[i] = dataset.File{Name: fmt.Sprintf("blob-%04d", i), Size: 1 * dataset.MiB}
	}
	client := &ftp.Client{
		Addr:        srv.Addr(),
		Source:      ftp.PatternSource{},
		Files:       files,
		PerProcRate: 60e6, // 60 Mbps per file: concurrency pays off
		MaxWorkers:  32,
	}
	if err := client.Start(transfer.Setting{Concurrency: 1, Parallelism: 1, Pipelining: 16}); err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	agent := core.NewGDAgent(24)
	if err := agent.SetFixedKnobs(1, 16); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	start := time.Now()
	err := core.Run(ctx, client, agent, core.RunConfig{
		SampleInterval: 500 * time.Millisecond,
		OnSample: func(s transfer.Sample, next transfer.Setting) {
			fmt.Printf("t=%5.1fs  %-14s → %7.1f Mbps   next: %s\n",
				time.Since(start).Seconds(), s.Setting, s.Throughput/1e6, next)
		},
	})
	if err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}

	elapsed := time.Since(start)
	fmt.Printf("\nmoved %.0f MiB in %v — %.0f Mbps mean (single 60 Mbps stream would have needed %.0fs)\n",
		float64(client.BytesSent())/float64(dataset.MiB), elapsed.Round(time.Second),
		float64(client.BytesSent())*8/elapsed.Seconds()/1e6,
		float64(client.BytesSent())*8/60e6)
}
