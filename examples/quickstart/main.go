// Quickstart: tune one simulated file transfer with Falcon.
//
// A Falcon agent (Online Gradient Descent + the Eq 4 utility) optimizes
// the concurrency of a 1 TB transfer on the Emulab testbed, where ten
// concurrent transfers are needed to fill the 100 Mbps bottleneck link.
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

func main() {
	// 1. Pick an environment. Emulab: 100 Mbps link, 30 ms RTT, and a
	//    10 Mbps per-process I/O throttle, so the optimal concurrency
	//    is 10.
	cfg := testbed.Emulab(10e6)
	eng, err := testbed.NewEngine(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Describe the transfer: the paper's 1000 × 1 GB dataset,
	//    starting from a conservative concurrency of 2.
	task, err := transfer.NewTask("demo", dataset.Main(),
		transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Create the Falcon agent and let the scheduler drive it: every
	//    3 s sample transfer produces a (throughput, loss) observation,
	//    the utility function scores it, and Gradient Descent proposes
	//    the next concurrency.
	agent := core.NewGDAgent(32)
	sched := testbed.NewScheduler(eng, 1)
	if err := sched.Add(testbed.Participant{Task: task, Controller: agent}); err != nil {
		log.Fatal(err)
	}
	timeline := sched.Run(180, 0.25)

	// 4. Inspect the outcome.
	fmt.Println("epoch-by-epoch decisions (first 12):")
	for i, d := range agent.History() {
		if i >= 12 {
			break
		}
		fmt.Printf("  sample %2d: cc=%-3d → %6.1f Mbps, loss %.2f%%, utility %8.0f → next cc=%d\n",
			i+1, d.Sample.Setting.Concurrency, d.Sample.Throughput/1e6,
			d.Sample.Loss*100, d.Utility/1e6, d.Next)
	}
	fmt.Printf("\nconverged throughput: %.1f Mbps (link capacity 100 Mbps)\n",
		timeline.MeanThroughputGbps("demo", 90, 180)*1000)
	fmt.Printf("converged concurrency: %.1f (optimal: 10)\n",
		timeline.Concurrency.Lookup("demo").MeanAfter(90))
}
