// Competing transfers: Falcon's fairness guarantee in action.
//
// Three Falcon-GD agents share the Emulab environment where 48
// concurrent transfers saturate the 1 Gbps link (the paper's Figure 13
// scenario). Agents join at t=0, 250 s, and 500 s; the third leaves at
// 750 s. Because every agent maximises the same strictly concave
// utility, incumbents *reduce* their concurrency when competitors
// arrive — fair sharing with minimal system overhead, not a concurrency
// arms race. Run with:
//
//	go run ./examples/competing
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

func agentTask(id string) *transfer.Task {
	t, err := transfer.NewTask(id, dataset.Uniform(id, 20000, int64(dataset.GB)),
		transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1})
	if err != nil {
		log.Fatal(err)
	}
	return t
}

func main() {
	cfg := testbed.EmulabGigabit(20.83e6) // optimum ≈48 concurrent transfers
	eng, err := testbed.NewEngine(cfg, 7)
	if err != nil {
		log.Fatal(err)
	}
	sched := testbed.NewScheduler(eng, 1)
	sched.SetLogf(func(f string, a ...any) { fmt.Printf(f+"\n", a...) })

	parts := []testbed.Participant{
		{Task: agentTask("alice"), Controller: core.NewGDAgent(100)},
		{Task: agentTask("bob"), Controller: core.NewGDAgent(100), JoinAt: 250},
		{Task: agentTask("carol"), Controller: core.NewGDAgent(100), JoinAt: 500, LeaveAt: 750},
	}
	for _, p := range parts {
		if err := sched.Add(p); err != nil {
			log.Fatal(err)
		}
	}
	tl := sched.Run(1000, 0.25)

	report := func(label string, t0, t1 float64, ids ...string) {
		var shares []float64
		fmt.Printf("\n%s (t=[%.0f,%.0f)):\n", label, t0, t1)
		for _, id := range ids {
			tput := tl.MeanThroughputGbps(id, t0, t1)
			cc := tl.Concurrency.Lookup(id).Between(t0, t1).Mean()
			shares = append(shares, tput)
			fmt.Printf("  %-6s %6.1f Mbps at concurrency %4.0f\n", id, tput*1000, cc)
		}
		if len(shares) > 1 {
			fmt.Printf("  Jain fairness index: %.3f\n", stats.JainIndex(shares))
		}
	}
	report("alice alone", 150, 250, "alice")
	report("alice + bob", 400, 500, "alice", "bob")
	report("all three", 650, 750, "alice", "bob", "carol")
	report("carol left", 900, 1000, "alice", "bob")

	fmt.Printf("\nconcurrency timeline:\n%s", tl.Concurrency.ASCIIChart(72, 12))
}
