// Command falconload load-tests the Falcon scenario web service. It
// drives thousands of concurrent scenario submissions with a
// configurable mixture — hot cache-hit, unique-document, and
// duplicate-in-flight (single-flight coalescing) requests, followed by
// JSON polling or SSE streaming — and reports requests/sec, p50/p99
// completion latency, cache and coalesce hit rates, and the
// coalescing invariants (exactly one simulation per duplicate group,
// bitwise-equal results for every waiter).
//
// Target a running falconweb:
//
//	falconload -url http://127.0.0.1:8080 -n 2000 -c 64
//
// or spin up an in-process service on a loopback listener (the mode
// simbench and `make loadsmoke` use, so the numbers measure the
// serving path without network noise):
//
//	falconload -inproc -n 2000 -c 64 -hot 0.5 -unique 0.3 -dup 0.2
//
// With -smoke the run additionally asserts nonzero throughput, zero
// errors, at least one coalesce hit, and the duplicate-group
// invariants, exiting 1 otherwise — the CI load smoke.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/loadgen"
	"repro/internal/webservice"
)

func main() {
	url := flag.String("url", "", "base URL of a running falconweb (empty = -inproc)")
	inproc := flag.Bool("inproc", false, "serve an in-process webservice on a loopback listener and load-test that")
	n := flag.Int("n", 1000, "total scenario submissions")
	c := flag.Int("c", 32, "request-driving worker count")
	hot := flag.Float64("hot", 0.5, "weight of hot (repeated, cache-hitting) requests")
	unique := flag.Float64("unique", 0.3, "weight of unique-document requests (each simulates)")
	dup := flag.Float64("dup", 0.2, "weight of duplicate-in-flight requests (coalescing groups)")
	dupWidth := flag.Int("dupwidth", 8, "identical concurrent requests per duplicate group")
	sse := flag.Float64("sse", 0.25, "fraction of requests followed over the SSE stream instead of polling")
	testbedName := flag.String("testbed", "emulab", "scenario testbed preset")
	simDuration := flag.Float64("simduration", 30, "simulated seconds per scenario")
	workers := flag.Int("workers", 0, "in-process service worker-pool size (0 = one per CPU)")
	storeCap := flag.Int("storecap", webservice.DefaultStoreCap, "in-process service store cap")
	seed := flag.Int64("seed", 1, "workload seed")
	jsonOut := flag.Bool("json", false, "write the result as JSON to stdout")
	smoke := flag.Bool("smoke", false, "assert load-smoke invariants (nonzero throughput, no errors, ≥1 coalesce hit, dup groups single-run and bitwise-equal)")
	flag.Parse()

	base := *url
	var shutdown func()
	if base == "" || *inproc {
		svc := webservice.NewWithOptions(webservice.Options{Workers: *workers, StoreCap: *storeCap})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal("listen: %v", err)
		}
		srv := &http.Server{Handler: svc.Handler()}
		go srv.Serve(ln)
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "falconload: in-process service at %s\n", base)
		shutdown = func() {
			svc.BeginDrain()
			srv.Close()
			svc.Close()
		}
	}

	opts := loadgen.Options{
		BaseURL:         base,
		Requests:        *n,
		Concurrency:     *c,
		HotWeight:       *hot,
		UniqueWeight:    *unique,
		DupWeight:       *dup,
		DupWidth:        *dupWidth,
		SSEFraction:     *sse,
		Testbed:         *testbedName,
		DurationSeconds: *simDuration,
		Seed:            *seed,
	}
	fmt.Fprintf(os.Stderr, "falconload: %d requests, %d workers, mix hot=%.2f unique=%.2f dup=%.2f (width %d), sse=%.2f\n",
		*n, *c, *hot, *unique, *dup, *dupWidth, *sse)
	start := time.Now()
	res, err := loadgen.Run(opts)
	if shutdown != nil {
		shutdown()
	}
	if err != nil {
		fatal("run: %v (after %s)", err, time.Since(start).Round(time.Millisecond))
	}

	fmt.Fprintf(os.Stderr,
		"falconload: %d requests in %.2fs = %.0f req/s | p50 %.2f ms p99 %.2f ms | cache %.1f%% coalesce %.1f%% simulated %d | dup groups %d single-run=%v bitwise-equal=%v | sse streams %d | errors %d\n",
		res.Requests, res.Seconds, res.RequestsPerSec, res.P50Ms, res.P99Ms,
		100*res.CacheHitRate, 100*res.CoalesceHitRate, res.Simulated,
		res.DupGroups, res.DupSingleRun, res.DupBitwiseEqual, res.SSEStreams, res.Errors)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal("encode: %v", err)
		}
	}

	if *smoke {
		var failures []string
		if res.RequestsPerSec <= 0 {
			failures = append(failures, "requests/sec is zero")
		}
		if res.Errors > 0 {
			failures = append(failures, fmt.Sprintf("%d request errors", res.Errors))
		}
		if res.CoalesceHits < 1 {
			failures = append(failures, "no coalesce hits (single-flight never engaged)")
		}
		if res.DupGroups > 0 && !res.DupSingleRun {
			failures = append(failures, "a duplicate group ran more than one simulation")
		}
		if res.DupGroups > 0 && !res.DupBitwiseEqual {
			failures = append(failures, "duplicate-group results were not bitwise equal")
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "falconload: SMOKE FAIL: %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "falconload: smoke ok")
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "falconload: "+format+"\n", args...)
	os.Exit(1)
}
