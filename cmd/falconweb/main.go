// Command falconweb serves the Falcon scenario web service (the
// paper's §6 "cloud-based web service" future work): submit transfer-
// optimization scenarios over HTTP, poll JSON results, and fetch SVG
// timelines.
//
//	falconweb -addr :8080
//	curl -X POST localhost:8080/api/scenarios \
//	     -d '{"testbed":"hpclab","algorithm":"gd","agents":3}'
//	curl localhost:8080/api/scenarios/s0001
//	curl localhost:8080/api/scenarios/s0001/progress   # live, while running
//	open localhost:8080/api/scenarios/s0001/throughput.svg
//
// The progress endpoint is fed by the scheduler's session event
// stream, so per-agent epoch counts and last-sample metrics are
// available while a scenario is still in flight.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/testbed"
	"repro/internal/webservice"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	exact := flag.Bool("exact", false, "run scenario simulations on the exact always-tick path instead of event-horizon stepping")
	flag.Parse()
	testbed.SetDefaultExact(*exact)

	svc := webservice.New()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	fmt.Printf("falconweb: listening on http://%s\n", *addr)
	log.Fatal(srv.ListenAndServe())
}
