// Command falconweb serves the Falcon scenario web service (the
// paper's §6 "cloud-based web service" future work): submit transfer-
// optimization scenarios over HTTP, poll JSON results or stream live
// events over SSE, fetch SVG timelines, and scrape Prometheus-text
// metrics.
//
//	falconweb -addr :8080
//	curl -X POST localhost:8080/api/scenarios \
//	     -d '{"testbed":"hpclab","algorithm":"gd","agents":3}'
//	curl localhost:8080/api/scenarios/s0001
//	curl localhost:8080/api/scenarios/s0001/progress   # live, while running
//	curl -N localhost:8080/api/scenarios/s0001/events  # live SSE stream
//	curl localhost:8080/metrics                        # Prometheus text
//	open localhost:8080/api/scenarios/s0001/throughput.svg
//
// The progress and events endpoints are fed by the scheduler's session
// event stream, so per-agent epoch counts and last-sample metrics are
// available while a scenario is still in flight.
//
// On SIGINT/SIGTERM the server drains gracefully: new submissions are
// refused with 503, SSE streams close with a shutdown event, in-flight
// handlers finish, and running scenarios complete before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/testbed"
	"repro/internal/webservice"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	exact := flag.Bool("exact", false, "run scenario simulations on the exact always-tick path instead of event-horizon stepping")
	workers := flag.Int("workers", 0, "max concurrent scenario simulations (0 = one per CPU)")
	storeCap := flag.Int("store-cap", webservice.DefaultStoreCap, "max scenarios retained; oldest completed are evicted past this (queued/running stay pinned)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight HTTP handlers")
	flag.Parse()
	testbed.SetDefaultExact(*exact)

	svc := webservice.NewWithOptions(webservice.Options{Workers: *workers, StoreCap: *storeCap})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Printf("falconweb: listening on http://%s\n", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()

	// Drain: refuse new submissions and close SSE streams first, so
	// srv.Shutdown is not held open by long-lived event streams; then
	// wait for in-flight handlers, then for running scenarios.
	fmt.Fprintln(os.Stderr, "falconweb: draining (refusing new scenarios, closing streams)...")
	svc.BeginDrain()
	shutCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "falconweb: shutdown: %v\n", err)
	}
	svc.Close()
	fmt.Fprintln(os.Stderr, "falconweb: drained, exiting")
}
