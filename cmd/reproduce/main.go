// Command reproduce regenerates the paper's tables and figures.
//
// Usage:
//
//	reproduce [-seed N] [-parallel N] [-csv DIR] [-chart] [ids...]
//
// With no ids, every experiment runs in paper order. Pass experiment
// ids (table1, fig1a, … fig16) to run a subset. -csv writes each
// experiment's charts as CSV files into DIR for external plotting;
// -chart prints compact ASCII charts of the timeline figures.
//
// -parallel controls the worker pool: independent experiments (and
// independent sweep points within an experiment) execute across that
// many goroutines, with per-trial seeds fixed by the trial index and
// results assembled in paper order, so the output is byte-identical
// for every -parallel value, including 1 (serial). Each simulated
// transfer inside an experiment is one session loop (internal/session)
// ticked on the testbed's virtual clock — the same loop that drives
// real FTP transfers on the wall clock — so figures reproduce the
// control flow of a live deployment, not a simulation-only variant.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"

	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/testbed"
)

func main() { os.Exit(run()) }

// run holds main's body so profile-flushing defers execute before the
// process exits with a status code.
func run() int {
	seed := flag.Int64("seed", 1, "base random seed for all experiments")
	workers := flag.Int("parallel", parallel.Workers(), "worker-pool width for independent experiments and trials (1 = serial)")
	csvDir := flag.String("csv", "", "directory to write chart CSVs into")
	svgDir := flag.String("svg", "", "directory to write SVG charts into")
	chart := flag.Bool("chart", false, "print ASCII charts for timeline figures")
	list := flag.Bool("list", false, "list experiment ids and exit")
	exact := flag.Bool("exact", false, "simulate on the exact always-tick path instead of event-horizon stepping (A/B verification; output must be byte-identical)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	testbed.SetDefaultExact(*exact)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			}
		}()
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Name)
		}
		return 0
	}

	runners := experiments.All()
	if ids := flag.Args(); len(ids) > 0 {
		runners = runners[:0]
		for _, id := range ids {
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "reproduce: unknown experiment %q (try -list)\n", id)
				return 2
			}
			runners = append(runners, r)
		}
	}

	for _, dir := range []string{*csvDir, *svgDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
			return 1
		}
	}

	// Worker-pool width for trials/sweep points *within* each
	// experiment; experiments.Run spreads whole experiments over the
	// same width.
	parallel.SetWorkers(*workers)

	failed := 0
	for _, out := range experiments.Run(runners, *seed, *workers) {
		fmt.Printf("running %s (%s)...\n", out.Runner.ID, out.Runner.Name)
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %s: %v\n", out.Runner.ID, out.Err)
			failed++
			continue
		}
		res := out.Result
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: %s: %v\n", res.ID, err)
			failed++
			continue
		}
		chartNames := make([]string, 0, len(res.Charts))
		for name := range res.Charts {
			chartNames = append(chartNames, name)
		}
		sort.Strings(chartNames)
		for _, name := range chartNames {
			ts := res.Charts[name]
			if *chart {
				fmt.Printf("-- %s/%s --\n%s", res.ID, name, ts.ASCIIChart(72, 12))
			}
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s-%s.csv", res.ID, name))
				if err := writeFile(path, ts.WriteCSV); err != nil {
					fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
					failed++
				}
			}
			if *svgDir != "" {
				path := filepath.Join(*svgDir, fmt.Sprintf("%s-%s.svg", res.ID, name))
				if err := writeFile(path, func(w io.Writer) error {
					return ts.WriteSVG(w, 720, 320, fmt.Sprintf("%s %s", res.ID, name))
				}); err != nil {
					fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
					failed++
				}
			}
		}
		fmt.Println()
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// writeFile creates path and streams write into it.
func writeFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
