// Command simbench runs the repository's simulator benchmarks and the
// end-to-end reproduce timing, and writes the results as JSON — the
// artifact `make bench` stores as BENCH_sim.json at the repo root so
// performance changes are reviewable alongside the code that caused
// them.
//
// Usage:
//
//	simbench [-out BENCH_sim.json] [-benchtime 1s] [-seed 1]
//	         [-skip-reproduce] [-skip-fleet] [-skip-million]
//
// Three sets of numbers matter: the per-benchmark ns/op and allocs/op
// for the hot paths (engine Step, fast-path SchedulerRun vs the exact
// always-tick SchedulerRunExact), the wall-clock seconds of a full
// serial `reproduce -seed N` run in both stepping modes, and the fleet
// timings — 10k static, 100k sharded, a dynamic scenario, and the
// million-session memory-diet runs (skippable with -skip-million; they
// take tens of minutes) with peak heap, bytes/session, and decision-
// memo hit rates parsed from fleet's -json summary. Required
// benchmarks and fleet sizes are checked, so a rename or dropped run
// fails loudly instead of silently thinning the artifact. simbench
// shells out to the go toolchain, so it must run from the repo root
// (or -chdir there).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/scenario"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	// Name is the benchmark name with the -cpus suffix stripped
	// (e.g. "BenchmarkSchedulerRun").
	Name string `json:"name"`
	// Package is the Go package the benchmark lives in.
	Package string `json:"package"`
	// Iterations is the b.N the reported averages were taken over.
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when the benchmark reports
	// allocations (all of ours do).
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// ReproduceTiming is the wall-clock measurement of one full serial
// reproduce run.
type ReproduceTiming struct {
	// Mode is "batched" (event-horizon stepping, the default) or
	// "exact" (-exact always-tick path).
	Mode    string  `json:"mode"`
	Args    string  `json:"args"`
	Seconds float64 `json:"seconds"`
}

// FleetTiming is the wall-clock measurement of one cmd/fleet run — the
// fleet-scale orchestration number the event-queue scheduler is judged
// by. One timing runs from flags (the static 10k contention workload)
// and one from a checked-in dynamic scenario document, so the overhead
// of mutation horizons on the event queue is tracked release to
// release.
type FleetTiming struct {
	// Scenario is the document the run was built from, empty for the
	// flag-driven static workload.
	Scenario string `json:"scenario,omitempty"`
	Sessions int    `json:"sessions"`
	// DurationSec is the simulated horizon of the run.
	DurationSec float64 `json:"duration_sec"`
	Args        string  `json:"args"`
	Seconds     float64 `json:"seconds"`
	// SessionsPerSec is simulated session-seconds advanced per wall
	// second (sessions × duration / wall), the scheduler's fleet
	// throughput metric.
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// The remaining fields are parsed from fleet -json output and are
	// absent for runs that cannot emit it (the scenario document path).
	RecordMode          string  `json:"record_mode,omitempty"`
	PeakHeapBytes       uint64  `json:"peak_heap_bytes,omitempty"`
	PeakRSSBytes        uint64  `json:"peak_rss_bytes,omitempty"`
	BytesPerSession     float64 `json:"bytes_per_session,omitempty"`
	EquilibriumJain     float64 `json:"equilibrium_jain,omitempty"`
	AggregateGbps       float64 `json:"aggregate_gbps,omitempty"`
	DecisionMemoHitRate float64 `json:"decision_memo_hit_rate,omitempty"`
	SweepMemoHitRate    float64 `json:"sweep_memo_hit_rate,omitempty"`
}

// ServiceTiming is the measured outcome of one falconload mixture run
// against the in-process web service — the serving-path numbers
// (throughput, latency percentiles, cache/coalesce hit rates) that sit
// beside the simulator benchmarks in BENCH_sim.json. The dup-heavy
// mixture doubles as the single-flight proof: every duplicate group
// must resolve with exactly one simulation and byte-identical results
// across members, checked per group by the load generator itself.
type ServiceTiming struct {
	// Mixture names the workload ("mixed", "dup-heavy").
	Mixture string `json:"mixture"`
	Args    string `json:"args"`
	// Requests and Concurrency describe the issued workload.
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Seconds     float64 `json:"seconds"`
	// RequestsPerSec is completed scenario submissions per wall
	// second (POST issued → terminal status observed).
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P99Ms          float64 `json:"p99_ms"`
	// CacheHitRate and CoalesceHitRate partition the requests that
	// never ran a simulation; Simulated counts the ones that did.
	CacheHitRate    float64 `json:"cache_hit_rate"`
	CoalesceHitRate float64 `json:"coalesce_hit_rate"`
	Simulated       int     `json:"simulated"`
	// DupGroups / DupSingleRun / DupBitwiseEqual are the coalescing
	// invariants: groups of identical concurrent submissions, each
	// resolving to one simulation with bitwise-equal results.
	DupGroups       int  `json:"dup_groups"`
	DupSingleRun    bool `json:"dup_single_run"`
	DupBitwiseEqual bool `json:"dup_bitwise_equal"`
	// SSEStreams counts requests followed over the event stream
	// rather than by polling.
	SSEStreams int `json:"sse_streams"`
	Errors     int `json:"errors"`
}

// Report is the BENCH_sim.json document.
type Report struct {
	// GeneratedAt is the RFC 3339 timestamp of the run.
	GeneratedAt string `json:"generated_at"`
	// GoVersion records the toolchain the numbers were taken with.
	GoVersion  string            `json:"go_version"`
	Benchtime  string            `json:"benchtime"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Reproduce  []ReproduceTiming `json:"reproduce,omitempty"`
	Fleet      []FleetTiming     `json:"fleet,omitempty"`
	Service    []ServiceTiming   `json:"service,omitempty"`
	// SpeedupExactOverBatched is exact seconds / batched seconds for
	// the reproduce runs — the stepping layer's end-to-end win.
	SpeedupExactOverBatched float64 `json:"speedup_exact_over_batched,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_sim.json", "output JSON path")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime per benchmark")
	seed := flag.Int64("seed", 1, "reproduce seed")
	skipReproduce := flag.Bool("skip-reproduce", false, "skip the end-to-end reproduce timings")
	skipFleet := flag.Bool("skip-fleet", false, "skip the 10k-session fleet timing")
	skipMillion := flag.Bool("skip-million", false, "skip the million-session fleet timings (tens of minutes of wall time)")
	skipService := flag.Bool("skip-service", false, "skip the web-service load-generator timings")
	flag.Parse()

	report := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   goVersion(),
		Benchtime:   *benchtime,
	}

	pkgs := []string{"./internal/netsim/", "./internal/testbed/", "./internal/bayesopt/"}
	fmt.Fprintf(os.Stderr, "simbench: benchmarking %s (benchtime %s)...\n", strings.Join(pkgs, " "), *benchtime)
	benches, err := runBenchmarks(pkgs, *benchtime)
	if err != nil {
		fatal("%v", err)
	}
	if err := checkRequired(benches); err != nil {
		fatal("%v", err)
	}
	report.Benchmarks = benches

	if !*skipReproduce {
		timings, err := timeReproduce(*seed)
		if err != nil {
			fatal("%v", err)
		}
		report.Reproduce = timings
		var batched, exact float64
		for _, tm := range timings {
			switch tm.Mode {
			case "batched":
				batched = tm.Seconds
			case "exact":
				exact = tm.Seconds
			}
		}
		if batched > 0 {
			report.SpeedupExactOverBatched = exact / batched
		}
	}

	if !*skipFleet {
		fleets, err := timeFleet(*seed, *skipMillion)
		if err != nil {
			fatal("%v", err)
		}
		if err := checkRequiredFleet(fleets, *skipMillion); err != nil {
			fatal("%v", err)
		}
		report.Fleet = fleets
	}

	if !*skipService {
		services, err := timeService(*seed)
		if err != nil {
			fatal("%v", err)
		}
		if err := checkRequiredService(services); err != nil {
			fatal("%v", err)
		}
		report.Service = services
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(os.Stderr, "simbench: wrote %s (%d benchmarks)\n", *out, len(benches))
}

// requiredBenchmarks are the hot-path benchmarks BENCH_sim.json must
// always carry: the decision path (Search.Next at the experiments'
// MaxN=32 domain and the 64-point large domain), the simulator loop,
// and the fleet-scale allocator (the 1000-flow class water-fill and
// the 256-task engine tick it feeds). A rename or accidental deletion
// fails the run instead of silently dropping the number reviewers
// track.
var requiredBenchmarks = []string{
	"BenchmarkSearchNext",
	"BenchmarkSearchNextLargeDomain",
	"BenchmarkSchedulerRunMinute",
	"BenchmarkAllocate1kFlows",
	"BenchmarkFleetStep",
	"BenchmarkFleetStep10k",
	"BenchmarkFleetStep100k",
}

// checkRequired verifies every required benchmark produced a result.
func checkRequired(benches []Benchmark) error {
	have := make(map[string]bool, len(benches))
	for _, b := range benches {
		have[b.Name] = true
	}
	var missing []string
	for _, name := range requiredBenchmarks {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("required benchmarks missing from results: %s", strings.Join(missing, ", "))
	}
	return nil
}

// checkRequiredFleet verifies every configured fleet size produced a
// timing. The fleet numbers are the artifact's headline — a silently
// dropped 10k, 100k, or million-session entry would let a scaling
// regression land unreviewed, so a missing size fails the run the same
// way a missing benchmark does.
func checkRequiredFleet(fleets []FleetTiming, skipMillion bool) error {
	required := []int{10000, 100000}
	if !skipMillion {
		required = append(required, 1000000)
	}
	have := make(map[int]bool, len(fleets))
	for _, tm := range fleets {
		have[tm.Sessions] = true
	}
	var missing []string
	for _, n := range required {
		if !have[n] {
			missing = append(missing, strconv.Itoa(n))
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("required fleet sizes missing from timings: %s sessions", strings.Join(missing, ", "))
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "simbench: "+format+"\n", args...)
	os.Exit(1)
}

// goVersion returns `go version`'s third field (e.g. "go1.22.5").
func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return "unknown"
	}
	fields := strings.Fields(string(out))
	if len(fields) >= 3 {
		return fields[2]
	}
	return strings.TrimSpace(string(out))
}

// runBenchmarks executes `go test -bench . -benchmem` over pkgs and
// parses the result lines.
func runBenchmarks(pkgs []string, benchtime string) ([]Benchmark, error) {
	args := append([]string{"test", "-run", "xxx", "-bench", ".", "-benchmem", "-benchtime", benchtime}, pkgs...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test -bench: %v\n%s%s", err, stdout.String(), stderr.String())
	}
	var benches []Benchmark
	pkg := ""
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if b, ok := parseBenchLine(line, pkg); ok {
			benches = append(benches, b)
		}
	}
	return benches, sc.Err()
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   4893   241550 ns/op   77824 B/op   146 allocs/op
func parseBenchLine(line, pkg string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		name = name[:i]
	}
	iters, err1 := strconv.ParseInt(fields[1], 10, 64)
	ns, err2 := strconv.ParseFloat(fields[2], 64)
	if err1 != nil || err2 != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Package: pkg, Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseInt(fields[i], 10, 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		}
	}
	return b, true
}

// timeFleet builds cmd/fleet and times the fleet-scale contention runs
// on the event-queue scheduler — the static 10k workload, the sharded
// 100k fleet, a dynamic scenario document, and (unless skipped) the
// million-session memory-diet runs — recording sessions_per_sec
// (simulated session-seconds per wall second) plus the memory and
// memoization figures each run's -json summary reports.
func timeFleet(seed int64, skipMillion bool) ([]FleetTiming, error) {
	dir, err := os.MkdirTemp("", "simbench-fleet")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "fleet")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/fleet").CombinedOutput(); err != nil {
		return nil, fmt.Errorf("build fleet: %v\n%s", err, out)
	}

	const (
		sessions = 10000
		duration = 600.0
	)
	run := func(tm FleetTiming, args []string) (FleetTiming, error) {
		fmt.Fprintf(os.Stderr, "simbench: timing fleet %s...\n", strings.Join(args, " "))
		// The scenario path renders a report and cannot emit the JSON
		// summary; every flag-built run is timed with -json so the
		// memory and memo figures land in the artifact.
		isScenario := len(args) > 0 && args[0] == "-scenario"
		runArgs := args
		if !isScenario {
			runArgs = append(append([]string{}, args...), "-json")
		}
		cmd := exec.Command(bin, runArgs...)
		var stdout, stderr bytes.Buffer
		if !isScenario {
			cmd.Stdout = &stdout
		}
		cmd.Stderr = &stderr
		start := time.Now()
		if err := cmd.Run(); err != nil {
			return tm, fmt.Errorf("fleet %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
		}
		tm.Args = strings.Join(args, " ")
		tm.Seconds = time.Since(start).Seconds()
		tm.SessionsPerSec = float64(tm.Sessions) * tm.DurationSec / tm.Seconds
		if !isScenario {
			var sum struct {
				RecordMode          string  `json:"record_mode"`
				EquilibriumJain     float64 `json:"equilibrium_jain"`
				AggregateGbps       float64 `json:"aggregate_gbps"`
				DecisionMemoLookups uint64  `json:"decision_memo_lookups"`
				DecisionMemoHitRate float64 `json:"decision_memo_hit_rate"`
				SweepMemoHitRate    float64 `json:"sweep_memo_hit_rate"`
				PeakHeapBytes       uint64  `json:"peak_heap_bytes"`
				PeakRSSBytes        uint64  `json:"peak_rss_bytes"`
				BytesPerSession     float64 `json:"bytes_per_session"`
			}
			if err := json.Unmarshal(bytes.TrimSpace(stdout.Bytes()), &sum); err != nil {
				return tm, fmt.Errorf("fleet %s: parse -json summary: %v\n%s", strings.Join(args, " "), err, stdout.String())
			}
			tm.RecordMode = sum.RecordMode
			tm.EquilibriumJain = sum.EquilibriumJain
			tm.AggregateGbps = sum.AggregateGbps
			tm.PeakHeapBytes = sum.PeakHeapBytes
			tm.PeakRSSBytes = sum.PeakRSSBytes
			tm.BytesPerSession = sum.BytesPerSession
			if sum.DecisionMemoLookups > 0 {
				tm.DecisionMemoHitRate = sum.DecisionMemoHitRate
				tm.SweepMemoHitRate = sum.SweepMemoHitRate
			}
		}
		return tm, nil
	}

	static, err := run(FleetTiming{Sessions: sessions, DurationSec: duration}, []string{
		"-n", strconv.Itoa(sessions),
		"-duration", strconv.FormatFloat(duration, 'f', -1, 64),
		"-stagger", "0.05",
		"-seed", strconv.FormatInt(seed, 10),
	})
	if err != nil {
		return nil, err
	}

	// The sharded 100k-session fleet: ten independent 10 Gbps
	// bottleneck links, each link's sessions on their own engine. The
	// same run is timed serially and with four shard workers; on a
	// multi-core host the second figure shows the shard-parallel
	// speedup (output is byte-identical either way).
	const (
		bigSessions = 100000
		bigDuration = 120.0
	)
	var sharded []FleetTiming
	for _, workers := range []string{"1", "4"} {
		tm, err := run(FleetTiming{Sessions: bigSessions, DurationSec: bigDuration}, []string{
			"-n", strconv.Itoa(bigSessions),
			"-duration", strconv.FormatFloat(bigDuration, 'f', -1, 64),
			"-stagger", "0.001",
			"-links", "10",
			"-shards", workers,
			"-seed", strconv.FormatInt(seed, 10),
		})
		if err != nil {
			return nil, err
		}
		sharded = append(sharded, tm)
	}

	// The same fleet under a mid-run cross-traffic wave. The document
	// mirrors the static workload's join ramp (one join every 50 ms,
	// hc/gd/bo interleaved), so the two numbers differ only by the
	// mutation schedule; session count and horizon come from the
	// document itself so the timings stay comparable if the file
	// changes.
	scenarioPath := filepath.Join("examples", "scenarios", "fleet-10k-flap.json")
	doc, err := scenario.ParseFile(scenarioPath)
	if err != nil {
		return nil, fmt.Errorf("dynamic fleet scenario: %v", err)
	}
	dynamic, err := run(FleetTiming{
		Scenario:    doc.Name,
		Sessions:    len(doc.AgentIDs()),
		DurationSec: doc.DurationSeconds,
	}, []string{"-scenario", scenarioPath})
	if err != nil {
		return nil, err
	}
	fleets := append([]FleetTiming{static, dynamic}, sharded...)
	if skipMillion {
		return fleets, nil
	}

	// The million-session fleet, one process: 100 links, 10k sessions
	// each, streaming-aggregate recording (the full-fidelity timelines
	// would need tens of GB). The headline run is the default noisy
	// fleet; the -nonoise -seedgroups pair then times the same shape
	// with cross-session decision memoization off and on, so the memo's
	// wall-clock win and hit rate are tracked next to the memory diet.
	const (
		millionSessions = 1000000
		millionDuration = 60.0
	)
	million, err := run(FleetTiming{Sessions: millionSessions, DurationSec: millionDuration}, []string{
		"-n", strconv.Itoa(millionSessions),
		"-duration", strconv.FormatFloat(millionDuration, 'f', -1, 64),
		"-stagger", "0.00002",
		"-links", "100",
		"-shards", "1",
		"-seed", strconv.FormatInt(seed, 10),
	})
	if err != nil {
		return nil, err
	}
	fleets = append(fleets, million)
	for _, memo := range []string{"off", "on"} {
		tm, err := run(FleetTiming{Sessions: millionSessions, DurationSec: millionDuration}, []string{
			"-n", strconv.Itoa(millionSessions),
			"-duration", strconv.FormatFloat(millionDuration, 'f', -1, 64),
			"-stagger", "0.05",
			"-links", "100",
			"-shards", "1",
			"-nonoise",
			"-seedgroups", "50",
			"-memo", memo,
			"-seed", strconv.FormatInt(seed, 10),
		})
		if err != nil {
			return nil, err
		}
		fleets = append(fleets, tm)
	}
	return fleets, nil
}

// timeReproduce builds cmd/reproduce once and times a full serial run
// in both stepping modes, batched first.
func timeReproduce(seed int64) ([]ReproduceTiming, error) {
	dir, err := os.MkdirTemp("", "simbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "reproduce")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/reproduce").CombinedOutput(); err != nil {
		return nil, fmt.Errorf("build reproduce: %v\n%s", err, out)
	}

	base := []string{"-seed", strconv.FormatInt(seed, 10), "-parallel", "1"}
	var timings []ReproduceTiming
	for _, mode := range []struct {
		name  string
		extra []string
	}{
		{name: "batched"},
		{name: "exact", extra: []string{"-exact"}},
	} {
		args := append(append([]string{}, base...), mode.extra...)
		fmt.Fprintf(os.Stderr, "simbench: timing reproduce %s...\n", strings.Join(args, " "))
		cmd := exec.Command(bin, args...)
		cmd.Stdout = nil // discard: only the wall time matters here
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		start := time.Now()
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("reproduce %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
		}
		timings = append(timings, ReproduceTiming{
			Mode:    mode.name,
			Args:    strings.Join(args, " "),
			Seconds: time.Since(start).Seconds(),
		})
	}
	return timings, nil
}

// timeService builds cmd/falconload and runs it in-process against
// the web service for two mixtures: "mixed" (a realistic blend of hot
// cache hits, unique documents, duplicate-in-flight groups, and SSE
// followers) and "dup-heavy" (almost entirely wide duplicate groups —
// the single-flight stress: N identical concurrent submissions must
// produce exactly one simulation and N bitwise-equal answers).
func timeService(seed int64) ([]ServiceTiming, error) {
	dir, err := os.MkdirTemp("", "simbench-service")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "falconload")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/falconload").CombinedOutput(); err != nil {
		return nil, fmt.Errorf("build falconload: %v\n%s", err, out)
	}

	mixtures := []struct {
		name string
		args []string
	}{
		{name: "mixed", args: []string{
			"-n", "2000", "-c", "64",
			"-hot", "0.5", "-unique", "0.3", "-dup", "0.2", "-dupwidth", "8",
			"-sse", "0.25",
		}},
		{name: "dup-heavy", args: []string{
			"-n", "1000", "-c", "64",
			"-hot", "0.1", "-unique", "0", "-dup", "0.9", "-dupwidth", "16",
			"-sse", "0.25",
		}},
	}

	var timings []ServiceTiming
	for _, mix := range mixtures {
		args := append([]string{"-inproc", "-json", "-seed", strconv.FormatInt(seed, 10)}, mix.args...)
		fmt.Fprintf(os.Stderr, "simbench: timing falconload %s (%s)...\n", mix.name, strings.Join(mix.args, " "))
		cmd := exec.Command(bin, args...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("falconload %s: %v\n%s", mix.name, err, stderr.String())
		}
		var res loadgen.Result
		if err := json.Unmarshal(bytes.TrimSpace(stdout.Bytes()), &res); err != nil {
			return nil, fmt.Errorf("falconload %s: parse -json output: %v\n%s", mix.name, err, stdout.String())
		}
		var c int
		for i, a := range mix.args {
			if a == "-c" && i+1 < len(mix.args) {
				c, _ = strconv.Atoi(mix.args[i+1])
			}
		}
		timings = append(timings, ServiceTiming{
			Mixture:         mix.name,
			Args:            strings.Join(mix.args, " "),
			Requests:        res.Requests,
			Concurrency:     c,
			Seconds:         res.Seconds,
			RequestsPerSec:  res.RequestsPerSec,
			P50Ms:           res.P50Ms,
			P99Ms:           res.P99Ms,
			CacheHitRate:    res.CacheHitRate,
			CoalesceHitRate: res.CoalesceHitRate,
			Simulated:       res.Simulated,
			DupGroups:       res.DupGroups,
			DupSingleRun:    res.DupSingleRun,
			DupBitwiseEqual: res.DupBitwiseEqual,
			SSEStreams:      res.SSEStreams,
			Errors:          res.Errors,
		})
	}
	return timings, nil
}

// checkRequiredService enforces the serving-path invariants on the
// recorded mixtures: no request errors anywhere, and the dup-heavy
// mixture proving single-flight — every duplicate group one
// simulation, results bitwise-equal, and a nonzero coalesce rate.
func checkRequiredService(timings []ServiceTiming) error {
	var dupHeavy *ServiceTiming
	for i := range timings {
		tm := &timings[i]
		if tm.Errors > 0 {
			return fmt.Errorf("service mixture %s recorded %d request errors", tm.Mixture, tm.Errors)
		}
		if tm.RequestsPerSec <= 0 {
			return fmt.Errorf("service mixture %s has no measured throughput", tm.Mixture)
		}
		if tm.Mixture == "dup-heavy" {
			dupHeavy = tm
		}
	}
	if dupHeavy == nil {
		return fmt.Errorf("service timings missing the dup-heavy mixture")
	}
	if dupHeavy.DupGroups == 0 || !dupHeavy.DupSingleRun {
		return fmt.Errorf("dup-heavy mixture: a duplicate group ran more than one simulation (groups=%d)", dupHeavy.DupGroups)
	}
	if !dupHeavy.DupBitwiseEqual {
		return fmt.Errorf("dup-heavy mixture: duplicate-group results were not bitwise equal")
	}
	if dupHeavy.CoalesceHitRate <= 0 {
		return fmt.Errorf("dup-heavy mixture: single-flight never engaged (coalesce rate 0)")
	}
	return nil
}
