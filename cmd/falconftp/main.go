// Command falconftp demonstrates Falcon on real TCP sockets: a server
// receives files, a client sends them, and (optionally) a Falcon agent
// tunes concurrency live.
//
// Receive side:
//
//	falconftp serve [-addr :9099] [-dir DIR] [-cmd-delay 0ms]
//
// Send side (synthetic data unless -src is given):
//
//	falconftp send -addr HOST:9099 [-files N] [-size BYTES]
//	          [-rate BITS_PER_SEC] [-tune gd|bo|hc] [-cc N] [-p N] [-q N]
//	          [-interval 1s] [-maxcc 32]
//
// With -tune, the agent reconfigures the transfer every -interval; the
// per-epoch samples and decisions are printed as they happen.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ftp"
	"repro/internal/transfer"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "falconftp: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 2 {
		fail("usage: falconftp serve|send [flags]")
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "send":
		send(os.Args[2:])
	default:
		fail("unknown subcommand %q", os.Args[1])
	}
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9099", "listen address")
	dir := fs.String("dir", "", "write received files here (default: discard)")
	cmdDelay := fs.Duration("cmd-delay", 0, "artificial per-command latency (emulates WAN control RTT)")
	fs.Parse(args)

	var sink ftp.Sink
	if *dir != "" {
		if err := os.MkdirAll(*dir, 0o755); err != nil {
			fail("%v", err)
		}
		ds := &ftp.DirSink{Dir: *dir}
		defer ds.Close()
		sink = ds
	} else {
		sink = &ftp.DiscardSink{}
	}
	srv := &ftp.Server{Sink: sink, CommandDelay: *cmdDelay, Logf: func(f string, a ...any) {
		fmt.Fprintf(os.Stderr, f+"\n", a...)
	}}
	if err := srv.Serve(*addr); err != nil {
		fail("%v", err)
	}
	fmt.Printf("falconftp: serving on %s (sink: %T)\n", srv.Addr(), sink)
	select {} // run until killed
}

func send(args []string) {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9099", "server address")
	nFiles := fs.Int("files", 500, "number of synthetic files")
	size := fs.Int64("size", 4*dataset.MiB, "bytes per synthetic file")
	rate := fs.Float64("rate", 100e6, "per-file rate throttle in bits/s (0 = unlimited)")
	tune := fs.String("tune", "", "tune live with gd, bo, or hc (empty = fixed setting)")
	cc := fs.Int("cc", 1, "initial concurrency")
	p := fs.Int("p", 1, "parallelism (streams per file)")
	q := fs.Int("q", 8, "pipelining depth")
	interval := fs.Duration("interval", time.Second, "sample-transfer duration for tuning")
	maxCC := fs.Int("maxcc", 32, "tuning search-space bound")
	fs.Parse(args)

	files := make([]dataset.File, *nFiles)
	for i := range files {
		files[i] = dataset.File{Name: fmt.Sprintf("synthetic-%06d", i), Size: *size}
	}
	client := &ftp.Client{
		Addr:        *addr,
		Source:      ftp.PatternSource{},
		Files:       files,
		PerProcRate: *rate,
		MaxWorkers:  *maxCC,
	}
	initial := transfer.Setting{Concurrency: *cc, Parallelism: *p, Pipelining: *q}
	start := time.Now()
	if err := client.Start(initial); err != nil {
		fail("%v", err)
	}

	// SIGINT/SIGTERM cancel the run context so the control loop stops at
	// a clean point and the worker pool shuts down instead of leaving
	// half-written transfers behind.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	interrupted := false
	if *tune != "" {
		agent, err := core.NewAgentByName(*tune, *maxCC, time.Now().UnixNano())
		if err != nil {
			fail("%v", err)
		}
		if err := agent.SetFixedKnobs(*p, *q); err != nil {
			fail("%v", err)
		}
		err = core.Run(ctx, client, agent, core.RunConfig{
			SampleInterval: *interval,
			OnSample: func(s transfer.Sample, next transfer.Setting) {
				fmt.Printf("sample: %s → %.1f Mbps; next %s\n",
					s.Setting, s.Throughput/1e6, next)
			},
		})
		if errors.Is(err, context.Canceled) {
			interrupted = true
		} else if err != nil {
			fail("%v", err)
		}
	} else {
		waitErr := make(chan error, 1)
		go func() { waitErr <- client.Wait() }()
		select {
		case err := <-waitErr:
			if err != nil {
				fail("%v", err)
			}
		case <-ctx.Done():
			interrupted = true
		}
	}
	client.Close() // drains the connection pool either way

	elapsed := time.Since(start)
	if interrupted {
		fmt.Fprintln(os.Stderr, "falconftp: interrupted, transfer stopped cleanly")
	}
	fmt.Printf("sent %d files, %.1f MiB in %v (%.1f Mbps mean)\n",
		len(files), float64(client.BytesSent())/float64(dataset.MiB), elapsed.Round(time.Millisecond),
		float64(client.BytesSent())*8/elapsed.Seconds()/1e6)
	if interrupted {
		os.Exit(130)
	}
}
