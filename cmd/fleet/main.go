// Command fleet runs the fleet-scale contention workload: hundreds of
// concurrent Falcon sessions (a hill-climbing / gradient-descent /
// Bayesian-optimization mix) joining one shared 10 Gbps bottleneck,
// each optimizing its own concurrency. It reports the time for the
// fleet to reach a Jain fairness index of 0.9, the equilibrium Jain
// index, and aggregate throughput.
//
// Usage:
//
//	fleet [-n N] [-duration S] [-stagger S] [-maxn N] [-seed N] [-algos hc,gd,bo] [-exact]
//
// The run is deterministic for a given flag set: the same seed always
// produces byte-identical output, in both the event-horizon (default)
// and -exact stepping modes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/testbed"
)

func main() { os.Exit(run()) }

func run() int {
	n := flag.Int("n", 500, "number of concurrent sessions")
	duration := flag.Float64("duration", 600, "simulated horizon in seconds")
	stagger := flag.Float64("stagger", 0.5, "join spacing in seconds (session i joins at i*stagger)")
	maxn := flag.Int("maxn", 8, "concurrency search-domain bound per agent")
	seed := flag.Int64("seed", 1, "base seed (session i's agent is seeded seed+i)")
	algos := flag.String("algos", "hc,gd,bo", "comma-separated algorithm mix cycled across sessions")
	exact := flag.Bool("exact", false, "simulate on the exact always-tick path instead of event-horizon stepping")
	flag.Parse()

	testbed.SetDefaultExact(*exact)
	var list []string
	for _, a := range strings.Split(*algos, ",") {
		if a = strings.TrimSpace(a); a != "" {
			list = append(list, a)
		}
	}
	res, err := experiments.Fleet(experiments.FleetConfig{
		Sessions:   *n,
		Duration:   *duration,
		Stagger:    *stagger,
		MaxN:       *maxn,
		Seed:       *seed,
		Algorithms: list,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		return 1
	}
	if err := res.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		return 1
	}
	return 0
}
