// Command fleet runs the fleet-scale contention workload: hundreds to
// tens of thousands of concurrent Falcon sessions (a hill-climbing /
// gradient-descent / Bayesian-optimization mix) joining one shared
// 10 Gbps bottleneck, each optimizing its own concurrency. It reports
// the time for the fleet to reach a Jain fairness index of 0.9, the
// equilibrium Jain index, and aggregate throughput, plus wall time and
// simulation rate (session-seconds of fleet simulated per wall second)
// on stderr so stdout stays byte-deterministic.
//
// Usage:
//
//	fleet [-n N] [-duration S] [-stagger S] [-maxn N] [-seed N] [-algos hc,gd,bo]
//	      [-links K] [-shards W] [-json] [-exact] [-scan]
//	      [-cpuprofile FILE] [-memprofile FILE]
//	fleet -scenario FILE.json [-seed N] [-shards W] [-exact] [-scan]
//
// With -links K > 1 the fleet spreads over K independent bottleneck
// links (session i routes over link i mod K); each link's sessions run
// as their own shard and -shards bounds how many shards step
// concurrently. -json replaces the report with a one-line summary
// (Jain, aggregate Gbps, wall seconds, sessions/sec).
//
// With -scenario, the flag-built fleet is replaced by a declarative
// scenario document (see internal/scenario) and the run reports
// time-to-refairness around every compiled link-capacity horizon via
// experiments.DynamicFleet.
//
// The run is deterministic for a given flag set: the same seed always
// produces byte-identical output, in the event-horizon (default) and
// -exact stepping modes, and with the event-queue (default) and -scan
// scheduler orchestration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/testbed"
)

func main() { os.Exit(run()) }

// run holds main's body so profile-flushing defers execute before the
// process exits with a status code.
func run() int {
	n := flag.Int("n", 500, "number of concurrent sessions")
	duration := flag.Float64("duration", 600, "simulated horizon in seconds")
	stagger := flag.Float64("stagger", 0.5, "join spacing in seconds (session i joins at i*stagger)")
	maxn := flag.Int("maxn", 8, "concurrency search-domain bound per agent")
	seed := flag.Int64("seed", 1, "base seed (session i's agent is seeded seed+i)")
	algos := flag.String("algos", "hc,gd,bo", "comma-separated algorithm mix cycled across sessions")
	links := flag.Int("links", 1, "number of independent bottleneck links; session i routes over link i mod links, each link runs as its own shard")
	shards := flag.Int("shards", 0, "max shards stepped concurrently (0 = harness default, 1 = serial); never affects output")
	jsonOut := flag.Bool("json", false, "emit a one-line machine-readable JSON summary instead of the report")
	scenarioPath := flag.String("scenario", "", "run a declarative scenario document (JSON) through the dynamic-fleet report instead of the flag-built fleet")
	exact := flag.Bool("exact", false, "simulate on the exact always-tick path instead of event-horizon stepping")
	scan := flag.Bool("scan", false, "use the legacy linear-scan scheduler loop instead of the event queue (A/B baseline; output must be byte-identical)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	testbed.SetDefaultExact(*exact)
	testbed.SetDefaultEventQueue(!*scan)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			}
		}()
	}

	if *scenarioPath != "" {
		doc, err := scenario.ParseFile(*scenarioPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		// -seed overrides the document's seed only when set explicitly.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				doc.Seed = *seed
			}
		})
		sessions := len(doc.AgentIDs())
		start := time.Now()
		res, err := experiments.DynamicFleet(doc)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		sessSec := float64(sessions) * doc.DurationSeconds / wall.Seconds()
		fmt.Fprintf(os.Stderr, "fleet: %d sessions × %.0f s simulated in %.2f s wall — %.0f session-seconds/sec\n",
			sessions, doc.DurationSeconds, wall.Seconds(), sessSec)
		return 0
	}

	var list []string
	for _, a := range strings.Split(*algos, ",") {
		if a = strings.TrimSpace(a); a != "" {
			list = append(list, a)
		}
	}
	start := time.Now()
	res, sum, err := experiments.Fleet(experiments.FleetConfig{
		Sessions:   *n,
		Duration:   *duration,
		Stagger:    *stagger,
		MaxN:       *maxn,
		Seed:       *seed,
		Algorithms: list,
		Links:      *links,
		Workers:    *shards,
	})
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		return 1
	}
	if *jsonOut {
		out := struct {
			experiments.FleetSummary
			WallSeconds    float64 `json:"wall_seconds"`
			SessionsPerSec float64 `json:"sessions_per_sec"`
		}{*sum, wall.Seconds(), float64(*n) / wall.Seconds()}
		enc, err := json.Marshal(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		fmt.Println(string(enc))
	} else if err := res.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		return 1
	}
	sessSec := float64(*n) * *duration / wall.Seconds()
	fmt.Fprintf(os.Stderr, "fleet: %d sessions × %.0f s simulated in %.2f s wall — %.0f session-seconds/sec\n",
		*n, *duration, wall.Seconds(), sessSec)
	return 0
}
