// Command fleet runs the fleet-scale contention workload: hundreds to
// tens of thousands of concurrent Falcon sessions (a hill-climbing /
// gradient-descent / Bayesian-optimization mix) joining one shared
// 10 Gbps bottleneck, each optimizing its own concurrency. It reports
// the time for the fleet to reach a Jain fairness index of 0.9, the
// equilibrium Jain index, and aggregate throughput, plus wall time and
// simulation rate (session-seconds of fleet simulated per wall second)
// on stderr so stdout stays byte-deterministic.
//
// Usage:
//
//	fleet [-n N] [-duration S] [-stagger S] [-maxn N] [-seed N] [-algos hc,gd,bo]
//	      [-links K] [-shards W] [-record auto|full|aggregate|off]
//	      [-memo auto|on|off] [-nonoise] [-seedgroups G] [-maxheap BYTES]
//	      [-json] [-exact] [-scan] [-cpuprofile FILE] [-memprofile FILE]
//	fleet -scenario FILE.json [-seed N] [-shards W] [-exact] [-scan]
//
// With -links K > 1 the fleet spreads over K independent bottleneck
// links (session i routes over link i mod K); each link's sessions run
// as their own shard and -shards bounds how many shards step
// concurrently. -json replaces the report with a one-line summary
// (Jain, aggregate Gbps, wall seconds, sessions/sec, peak heap,
// decision-memo hit rates, record mode).
//
// -record selects recording fidelity (see experiments.FleetConfig):
// "auto" (default) uses full per-session timelines below 50 000
// sessions and the constant-space streaming aggregates at or above —
// both produce bitwise-identical metrics. -memo enables cross-session
// decision memoization; "auto" turns it on exactly when -nonoise is
// set, since caching only hits when identical sessions exist (and the
// per-decision store traffic is wasted otherwise). -nonoise zeroes
// measurement noise and -seedgroups G collapses the fleet to G
// distinct agent populations — together they create the exact twins
// memoization collapses. -maxheap, when positive, exits with status 1
// if the post-run peak heap exceeds the budget (the CI memory smoke).
//
// With -scenario, the flag-built fleet is replaced by a declarative
// scenario document (see internal/scenario) and the run reports
// time-to-refairness around every compiled link-capacity horizon via
// experiments.DynamicFleet.
//
// The run is deterministic for a given flag set: the same seed always
// produces byte-identical output, in the event-horizon (default) and
// -exact stepping modes, and with the event-queue (default) and -scan
// scheduler orchestration.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/testbed"
)

func main() { os.Exit(run()) }

// run holds main's body so profile-flushing defers execute before the
// process exits with a status code.
func run() int {
	n := flag.Int("n", 500, "number of concurrent sessions")
	duration := flag.Float64("duration", 600, "simulated horizon in seconds")
	stagger := flag.Float64("stagger", 0.5, "join spacing in seconds (session i joins at i*stagger)")
	maxn := flag.Int("maxn", 8, "concurrency search-domain bound per agent")
	seed := flag.Int64("seed", 1, "base seed (session i's agent is seeded seed+i)")
	algos := flag.String("algos", "hc,gd,bo", "comma-separated algorithm mix cycled across sessions")
	links := flag.Int("links", 1, "number of independent bottleneck links; session i routes over link i mod links, each link runs as its own shard")
	shards := flag.Int("shards", 0, "max shards stepped concurrently (0 = harness default, 1 = serial); never affects output")
	record := flag.String("record", "auto", "recording fidelity: auto, full, aggregate, or off (auto = aggregate at ≥50000 sessions, full below); metrics are bitwise identical between full and aggregate")
	memo := flag.String("memo", "auto", "cross-session decision memoization: auto, on, or off (auto = on iff -nonoise); never affects output")
	nonoise := flag.Bool("nonoise", false, "zero the environment's measurement noise, making same-seed sessions exact twins")
	seedgroups := flag.Int("seedgroups", 0, "collapse agent seeds to seed+i%G, creating G distinct populations of identical sessions (0 = all distinct)")
	maxheap := flag.Uint64("maxheap", 0, "exit 1 if post-run peak heap (runtime HeapSys) exceeds this many bytes (0 = no budget)")
	jsonOut := flag.Bool("json", false, "emit a one-line machine-readable JSON summary instead of the report")
	scenarioPath := flag.String("scenario", "", "run a declarative scenario document (JSON) through the dynamic-fleet report instead of the flag-built fleet")
	exact := flag.Bool("exact", false, "simulate on the exact always-tick path instead of event-horizon stepping")
	scan := flag.Bool("scan", false, "use the legacy linear-scan scheduler loop instead of the event queue (A/B baseline; output must be byte-identical)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	testbed.SetDefaultExact(*exact)
	testbed.SetDefaultEventQueue(!*scan)
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			}
		}()
	}

	if *scenarioPath != "" {
		doc, err := scenario.ParseFile(*scenarioPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		// -seed overrides the document's seed only when set explicitly.
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				doc.Seed = *seed
			}
		})
		sessions := len(doc.AgentIDs())
		start := time.Now()
		res, err := experiments.DynamicFleet(doc)
		wall := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		sessSec := float64(sessions) * doc.DurationSeconds / wall.Seconds()
		fmt.Fprintf(os.Stderr, "fleet: %d sessions × %.0f s simulated in %.2f s wall — %.0f session-seconds/sec\n",
			sessions, doc.DurationSeconds, wall.Seconds(), sessSec)
		return 0
	}

	var list []string
	for _, a := range strings.Split(*algos, ",") {
		if a = strings.TrimSpace(a); a != "" {
			list = append(list, a)
		}
	}
	recordMode := *record
	if recordMode == "auto" {
		// Full fidelity is O(sessions × samples) memory; past this
		// point the streaming aggregates carry the run. Metrics are
		// bitwise identical either way.
		if *n >= 50000 {
			recordMode = "aggregate"
		} else {
			recordMode = "full"
		}
	}
	useMemo := false
	switch *memo {
	case "on":
		useMemo = true
	case "off":
	case "auto":
		// Memoization only hits when identical sessions exist, which
		// requires noise off; on a noisy fleet every lookup misses and
		// every BO decision stores a dead GP snapshot.
		useMemo = *nonoise
	default:
		fmt.Fprintf(os.Stderr, "fleet: unknown -memo %q (want auto, on, or off)\n", *memo)
		return 1
	}
	start := time.Now()
	res, sum, err := experiments.Fleet(experiments.FleetConfig{
		Sessions:   *n,
		Duration:   *duration,
		Stagger:    *stagger,
		MaxN:       *maxn,
		Seed:       *seed,
		Algorithms: list,
		Links:      *links,
		Workers:    *shards,
		RecordMode: recordMode,
		Memo:       useMemo,
		NoNoise:    *nonoise,
		SeedGroups: *seedgroups,
	})
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		return 1
	}
	peakHeap, peakRSS := peakMemory()
	if *jsonOut {
		out := struct {
			experiments.FleetSummary
			WallSeconds     float64 `json:"wall_seconds"`
			SessionsPerSec  float64 `json:"sessions_per_sec"`
			PeakHeapBytes   uint64  `json:"peak_heap_bytes"`
			PeakRSSBytes    uint64  `json:"peak_rss_bytes"`
			BytesPerSession float64 `json:"bytes_per_session"`
		}{*sum, wall.Seconds(), float64(*n) / wall.Seconds(),
			peakHeap, peakRSS, float64(peakHeap) / float64(*n)}
		enc, err := json.Marshal(out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
			return 1
		}
		fmt.Println(string(enc))
	} else if err := res.Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		return 1
	}
	sessSec := float64(*n) * *duration / wall.Seconds()
	fmt.Fprintf(os.Stderr, "fleet: %d sessions × %.0f s simulated in %.2f s wall — %.0f session-seconds/sec\n",
		*n, *duration, wall.Seconds(), sessSec)
	fmt.Fprintf(os.Stderr, "fleet: record %s, peak heap %.1f MB (%.0f B/session), peak RSS %.1f MB\n",
		sum.RecordMode, float64(peakHeap)/1e6, float64(peakHeap)/float64(*n), float64(peakRSS)/1e6)
	if useMemo {
		fmt.Fprintf(os.Stderr, "fleet: decision memo %d/%d hits (%.1f%%), sweep memo %d/%d hits (%.1f%%)\n",
			sum.DecisionMemoHits, sum.DecisionMemoLookups, 100*sum.DecisionMemoHitRate,
			sum.SweepMemoHits, sum.SweepMemoLookups, 100*sum.SweepMemoHitRate)
	}
	if *maxheap > 0 && peakHeap > *maxheap {
		fmt.Fprintf(os.Stderr, "fleet: peak heap %d bytes exceeds -maxheap budget %d\n", peakHeap, *maxheap)
		return 1
	}
	return 0
}

// peakMemory reports the process's peak heap (runtime HeapSys — the
// high-water mark of heap memory obtained from the OS) and peak RSS
// (VmHWM from /proc/self/status; 0 where unavailable).
func peakMemory() (heap, rss uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	heap = ms.HeapSys
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return heap, 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) >= 2 {
			var kb uint64
			if _, err := fmt.Sscanf(fields[1], "%d", &kb); err == nil {
				rss = kb * 1024
			}
		}
		break
	}
	return heap, rss
}
