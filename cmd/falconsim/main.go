// Command falconsim runs one transfer-optimization scenario on a
// simulated testbed and prints the timeline: per-agent throughput,
// concurrency, and loss at each decision epoch.
//
// Usage:
//
//	falconsim [-testbed NAME] [-algo gd|bo|hc|globus|harp|fixed:N]
//	          [-agents N] [-stagger SECONDS] [-duration SECONDS]
//	          [-seed N] [-chart] [-exact]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// Examples:
//
//	falconsim -testbed emulab -algo gd
//	falconsim -testbed hpclab -algo bo -agents 3 -stagger 120
//	falconsim -testbed emulab-1g -algo fixed:48 -duration 120
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "falconsim: "+format+"\n", args...)
	os.Exit(1)
}

func pickTestbed(name string) (testbed.Config, bool) {
	switch name {
	case "emulab":
		return testbed.Emulab(10e6), true
	case "emulab-1g":
		return testbed.EmulabGigabit(20.83e6), true
	case "xsede":
		return testbed.XSEDE(), true
	case "hpclab":
		return testbed.HPCLab(), true
	case "campus":
		return testbed.CampusCluster(), true
	case "wan":
		return testbed.StampedeCometWAN(), true
	default:
		return testbed.Config{}, false
	}
}

func makeController(algo string, maxN int, seed int64) (testbed.Controller, transfer.Setting, error) {
	initial := transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1}
	switch {
	case algo == "gd" || algo == "bo" || algo == "hc":
		a, err := core.NewAgentByName(algo, maxN, seed)
		return a, initial, err
	case algo == "globus":
		g, err := baselines.NewGlobus(dataset.Main())
		if err != nil {
			return nil, initial, err
		}
		return g, g.Setting(), nil
	case algo == "harp":
		h, err := baselines.NewHARP(baselines.SyntheticHistory(1.2e9, 9.5e9, 16), maxN)
		if err != nil {
			return nil, initial, err
		}
		return h, h.Setting(), nil
	case strings.HasPrefix(algo, "fixed:"):
		n, err := strconv.Atoi(strings.TrimPrefix(algo, "fixed:"))
		if err != nil || n < 1 {
			return nil, initial, fmt.Errorf("bad fixed concurrency %q", algo)
		}
		s := transfer.Setting{Concurrency: n, Parallelism: 1, Pipelining: 1}
		return testbed.FixedController{S: s}, s, nil
	default:
		return nil, initial, fmt.Errorf("unknown algorithm %q", algo)
	}
}

func main() {
	tbName := flag.String("testbed", "emulab", "testbed: emulab, emulab-1g, xsede, hpclab, campus, wan")
	algo := flag.String("algo", "gd", "controller: gd, bo, hc, globus, harp, fixed:N")
	agents := flag.Int("agents", 1, "number of competing transfer tasks")
	stagger := flag.Float64("stagger", 120, "seconds between agent joins")
	duration := flag.Float64("duration", 300, "simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	maxN := flag.Int("maxcc", 64, "search-space upper bound for concurrency")
	chart := flag.Bool("chart", true, "print ASCII charts")
	events := flag.Bool("events", false, "print the typed session event stream as it happens")
	exact := flag.Bool("exact", false, "simulate on the exact always-tick path instead of event-horizon stepping (A/B verification; output must be byte-identical)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulation run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the run")
	flag.Parse()

	testbed.SetDefaultExact(*exact)
	cfg, ok := pickTestbed(*tbName)
	if !ok {
		fail("unknown testbed %q", *tbName)
	}
	if *agents < 1 {
		fail("need at least one agent")
	}

	eng, err := testbed.NewEngine(cfg, *seed)
	if err != nil {
		fail("%v", err)
	}
	sched := testbed.NewScheduler(eng, 1)
	sched.SetLogf(func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if *events {
		sched.SetEventSink(func(e session.Event) {
			switch e.Kind {
			case session.Sample:
				fmt.Printf("event t=%7.2f %-8s %-9s %.3f Gbps loss=%.4f\n",
					e.Time, e.Session, e.Kind, e.Sample.Throughput/1e9, e.Sample.Loss)
			case session.Decision, session.Apply:
				fmt.Printf("event t=%7.2f %-8s %-9s %s\n", e.Time, e.Session, e.Kind, e.Setting)
			case session.Error:
				fmt.Printf("event t=%7.2f %-8s %-9s %v\n", e.Time, e.Session, e.Kind, e.Err)
			default:
				fmt.Printf("event t=%7.2f %-8s %-9s\n", e.Time, e.Session, e.Kind)
			}
		})
	}
	for i := 0; i < *agents; i++ {
		ctrl, initial, err := makeController(*algo, *maxN, *seed+int64(i))
		if err != nil {
			fail("%v", err)
		}
		id := fmt.Sprintf("agent%d", i+1)
		task, err := transfer.NewTask(id, dataset.Uniform(id, 20000, int64(dataset.GB)), initial)
		if err != nil {
			fail("%v", err)
		}
		if err := sched.Add(testbed.Participant{
			Task: task, Controller: ctrl, JoinAt: float64(i) * *stagger,
		}); err != nil {
			fail("%v", err)
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("%v", err)
		}
	}
	tl := sched.Run(*duration, 0.25)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fail("%v", err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fail("%v", err)
		}
		f.Close()
	}

	fmt.Printf("\n%s on %s, %d agent(s), %.0fs\n", *algo, cfg.Name, *agents, *duration)
	fmt.Printf("%-10s %-18s %-14s\n", "agent", "mean Gbps (2nd half)", "mean cc")
	var shares []float64
	for i := 0; i < *agents; i++ {
		id := fmt.Sprintf("agent%d", i+1)
		tput := tl.MeanThroughputGbps(id, *duration/2, *duration)
		shares = append(shares, tput)
		cc := 0.0
		if s := tl.Concurrency.Lookup(id); s != nil {
			cc = s.MeanAfter(*duration / 2)
		}
		fmt.Printf("%-10s %-18.3f %-14.1f\n", id, tput, cc)
	}
	if *agents > 1 {
		fmt.Printf("Jain fairness index: %.3f\n", stats.JainIndex(shares))
	}
	if *chart {
		fmt.Printf("\nthroughput (Gbps):\n%s", tl.Throughput.ASCIIChart(72, 12))
		fmt.Printf("\nconcurrency:\n%s", tl.Concurrency.ASCIIChart(72, 12))
	}
}
