// Command falconsim runs one transfer-optimization scenario on a
// simulated testbed and prints the timeline: per-agent throughput,
// concurrency, and loss at each decision epoch.
//
// Usage:
//
//	falconsim [-testbed NAME] [-algo gd|bo|hc|globus|harp|fixed:N]
//	          [-agents N] [-stagger SECONDS] [-duration SECONDS]
//	          [-seed N] [-chart] [-exact]
//	          [-cpuprofile FILE] [-memprofile FILE]
//	falconsim -scenario FILE.json [-seed N] [-chart] [-exact]
//	falconsim -validate FILE.json|DIR...
//
// Examples:
//
//	falconsim -testbed emulab -algo gd
//	falconsim -testbed hpclab -algo bo -agents 3 -stagger 120
//	falconsim -testbed emulab-1g -algo fixed:48 -duration 120
//	falconsim -scenario examples/scenarios/fleet-flap.json
//	falconsim -validate examples/scenarios
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/scenario"
	"repro/internal/session"
	"repro/internal/stats"
	"repro/internal/testbed"
	"repro/internal/transfer"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "falconsim: "+format+"\n", args...)
	os.Exit(1)
}

// pickTestbed resolves a named environment through the scenario
// subsystem's preset table, so the CLI, the webservice, and scenario
// documents share one name space.
func pickTestbed(name string) (testbed.Config, bool) {
	return scenario.PresetConfig(name)
}

func makeController(algo string, maxN int, seed int64) (testbed.Controller, transfer.Setting, error) {
	initial := transfer.Setting{Concurrency: 2, Parallelism: 1, Pipelining: 1}
	switch {
	case algo == "gd" || algo == "bo" || algo == "hc":
		a, err := core.NewAgentByName(algo, maxN, seed)
		return a, initial, err
	case algo == "globus":
		g, err := baselines.NewGlobus(dataset.Main())
		if err != nil {
			return nil, initial, err
		}
		return g, g.Setting(), nil
	case algo == "harp":
		h, err := baselines.NewHARP(baselines.SyntheticHistory(1.2e9, 9.5e9, 16), maxN)
		if err != nil {
			return nil, initial, err
		}
		return h, h.Setting(), nil
	case strings.HasPrefix(algo, "fixed:"):
		n, err := strconv.Atoi(strings.TrimPrefix(algo, "fixed:"))
		if err != nil || n < 1 {
			return nil, initial, fmt.Errorf("bad fixed concurrency %q", algo)
		}
		s := transfer.Setting{Concurrency: n, Parallelism: 1, Pipelining: 1}
		return testbed.FixedController{S: s}, s, nil
	default:
		return nil, initial, fmt.Errorf("unknown algorithm %q", algo)
	}
}

// eventSink prints the typed session event stream as it happens.
func eventSink(e session.Event) {
	switch e.Kind {
	case session.Sample:
		fmt.Printf("event t=%7.2f %-8s %-9s %.3f Gbps loss=%.4f\n",
			e.Time, e.Session, e.Kind, e.Sample.Throughput/1e9, e.Sample.Loss)
	case session.Decision, session.Apply:
		fmt.Printf("event t=%7.2f %-8s %-9s %s\n", e.Time, e.Session, e.Kind, e.Setting)
	case session.Error:
		fmt.Printf("event t=%7.2f %-8s %-9s %v\n", e.Time, e.Session, e.Kind, e.Err)
	default:
		fmt.Printf("event t=%7.2f %-8s %-9s\n", e.Time, e.Session, e.Kind)
	}
}

// summarize prints the per-agent table, Jain index, and charts.
func summarize(tl *testbed.Timeline, ids []string, duration float64, chart bool) {
	fmt.Printf("%-10s %-18s %-14s\n", "agent", "mean Gbps (2nd half)", "mean cc")
	var shares []float64
	for _, id := range ids {
		tput := tl.MeanThroughputGbps(id, duration/2, duration)
		shares = append(shares, tput)
		cc := 0.0
		if s := tl.Concurrency.Lookup(id); s != nil {
			cc = s.MeanAfter(duration / 2)
		}
		fmt.Printf("%-10s %-18.3f %-14.1f\n", id, tput, cc)
	}
	if len(ids) > 1 {
		fmt.Printf("Jain fairness index: %.3f\n", stats.JainIndex(shares))
	}
	if chart {
		fmt.Printf("\nthroughput (Gbps):\n%s", tl.Throughput.ASCIIChart(72, 12))
		fmt.Printf("\nconcurrency:\n%s", tl.Concurrency.ASCIIChart(72, 12))
	}
}

// validateScenarios validates every scenario file in the given files
// or directories (non-recursive, *.json) and reports per-file status.
func validateScenarios(paths []string) int {
	if len(paths) == 0 {
		fail("-validate needs scenario files or directories")
	}
	var files []string
	for _, p := range paths {
		info, err := os.Stat(p)
		if err != nil {
			fail("%v", err)
		}
		if !info.IsDir() {
			files = append(files, p)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(p, "*.json"))
		if err != nil {
			fail("%v", err)
		}
		if len(matches) == 0 {
			fail("no scenario files in %s", p)
		}
		files = append(files, matches...)
	}
	bad := 0
	for _, f := range files {
		doc, err := scenario.ParseFile(f)
		if err == nil {
			// A valid document must also compile: controller names,
			// route existence, and cross-traffic rates are only checked
			// by Build.
			_, err = doc.Build()
		}
		if err != nil {
			bad++
			fmt.Printf("FAIL %s: %v\n", f, err)
			continue
		}
		fmt.Printf("ok   %s (%s: %d agents, %d mutations)\n", f, doc.Name, len(doc.AgentIDs()), len(doc.Mutations))
	}
	if bad > 0 {
		return 1
	}
	return 0
}

// runScenarioFile executes a scenario document end to end.
func runScenarioFile(path string, seedOverride *int64, chart, events bool,
	cpuprofile, memprofile string) {
	doc, err := scenario.ParseFile(path)
	if err != nil {
		fail("%v", err)
	}
	if seedOverride != nil {
		doc.Seed = *seedOverride
	}
	run, err := doc.Build()
	if err != nil {
		fail("%v", err)
	}
	opt := scenario.ExecOptions{Logf: func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}}
	if events {
		opt.Events = eventSink
	}
	stopProfiles := startProfiles(cpuprofile, memprofile)
	tl, err := run.Execute(opt)
	stopProfiles()
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("\nscenario %s on %s, %d agent(s), %.0fs, %d mutation horizon(s)\n",
		doc.Name, run.Config.Name, len(run.AgentIDs), doc.DurationSeconds, len(run.Mutations))
	summarize(tl, run.AgentIDs, doc.DurationSeconds, chart)
}

// startProfiles begins CPU profiling and returns a func that stops it
// and writes the heap profile; either path may be empty.
func startProfiles(cpuprofile, memprofile string) func() {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fail("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail("%v", err)
		}
	}
	return func() {
		if cpuprofile != "" {
			pprof.StopCPUProfile()
		}
		if memprofile != "" {
			f, err := os.Create(memprofile)
			if err != nil {
				fail("%v", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail("%v", err)
			}
			f.Close()
		}
	}
}

func main() {
	tbName := flag.String("testbed", "emulab", "testbed: "+strings.Join(scenario.Presets(), ", "))
	algo := flag.String("algo", "gd", "controller: gd, bo, hc, globus, harp, fixed:N")
	agents := flag.Int("agents", 1, "number of competing transfer tasks")
	stagger := flag.Float64("stagger", 120, "seconds between agent joins")
	duration := flag.Float64("duration", 300, "simulated seconds")
	seed := flag.Int64("seed", 1, "random seed")
	maxN := flag.Int("maxcc", 64, "search-space upper bound for concurrency")
	chart := flag.Bool("chart", true, "print ASCII charts")
	events := flag.Bool("events", false, "print the typed session event stream as it happens")
	exact := flag.Bool("exact", false, "simulate on the exact always-tick path instead of event-horizon stepping (A/B verification; output must be byte-identical)")
	scenarioPath := flag.String("scenario", "", "run a declarative scenario document (JSON) instead of the flag-built run")
	validate := flag.Bool("validate", false, "validate the scenario files/directories given as arguments and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the simulation run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the run")
	flag.Parse()

	if *validate {
		os.Exit(validateScenarios(flag.Args()))
	}
	testbed.SetDefaultExact(*exact)
	if *scenarioPath != "" {
		// -seed overrides the document's seed only when set explicitly.
		var seedOverride *int64
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedOverride = seed
			}
		})
		runScenarioFile(*scenarioPath, seedOverride, *chart, *events, *cpuprofile, *memprofile)
		return
	}
	cfg, ok := pickTestbed(*tbName)
	if !ok {
		fail("unknown testbed %q", *tbName)
	}
	if *agents < 1 {
		fail("need at least one agent")
	}

	eng, err := testbed.NewEngine(cfg, *seed)
	if err != nil {
		fail("%v", err)
	}
	sched := testbed.NewScheduler(eng, 1)
	sched.SetLogf(func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if *events {
		sched.SetEventSink(eventSink)
	}
	ids := make([]string, 0, *agents)
	for i := 0; i < *agents; i++ {
		ctrl, initial, err := makeController(*algo, *maxN, *seed+int64(i))
		if err != nil {
			fail("%v", err)
		}
		id := fmt.Sprintf("agent%d", i+1)
		ids = append(ids, id)
		task, err := transfer.NewTask(id, dataset.Uniform(id, 20000, int64(dataset.GB)), initial)
		if err != nil {
			fail("%v", err)
		}
		if err := sched.Add(testbed.Participant{
			Task: task, Controller: ctrl, JoinAt: float64(i) * *stagger,
		}); err != nil {
			fail("%v", err)
		}
	}

	stopProfiles := startProfiles(*cpuprofile, *memprofile)
	tl := sched.Run(*duration, 0.25)
	stopProfiles()

	fmt.Printf("\n%s on %s, %d agent(s), %.0fs\n", *algo, cfg.Name, *agents, *duration)
	summarize(tl, ids, *duration, *chart)
}
