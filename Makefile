GO ?= go

.PHONY: build test race vet bench bench-raw memsmoke loadsmoke reproduce verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Benchmark sweep + end-to-end reproduce timing, recorded as JSON at
# the repo root so perf changes land with reviewable numbers.
bench:
	$(GO) run ./cmd/simbench -out BENCH_sim.json

# Raw hot-path benchmarks with allocation counts, for interactive use.
bench-raw:
	$(GO) test -run xxx -bench . -benchtime 1s ./internal/netsim/ ./internal/testbed/ ./internal/bayesopt/

# Memory-regression smoke (run in CI): a 10k-session fleet in
# streaming-aggregate mode must finish inside the checked-in peak-heap
# budget. Measured ~117 MB (≈11.7 kB/session); the 256 MB budget is
# ~2x headroom, so only a real per-session memory regression trips it.
FLEET_HEAP_BUDGET ?= 268435456

memsmoke:
	$(GO) run ./cmd/fleet -n 10000 -duration 120 -stagger 0.001 -record aggregate -seed 1 -maxheap $(FLEET_HEAP_BUDGET)

# Serving-path smoke (run in CI): a race-enabled load-generator run
# against the in-process web service. -smoke asserts nonzero
# throughput, zero request errors, at least one coalesce hit (the
# single-flight path actually engaged), and every duplicate group
# resolving to exactly one simulation with bitwise-equal results.
loadsmoke:
	$(GO) run -race ./cmd/falconload -inproc -n 120 -c 16 -workers 2 \
		-hot 0.3 -unique 0.1 -dup 0.6 -dupwidth 6 -sse 0.3 -smoke

reproduce:
	$(GO) run ./cmd/reproduce

# Full gate: static checks, build, the race-enabled suite, and every
# checked-in scenario document parsing AND compiling.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) run ./cmd/falconsim -validate ./examples/scenarios
