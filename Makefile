GO ?= go

.PHONY: build test race vet bench reproduce verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Hot-path benchmarks with allocation counts.
bench:
	$(GO) test -run xxx -bench . -benchtime 1s ./internal/netsim/ ./internal/testbed/ ./internal/bayesopt/

reproduce:
	$(GO) run ./cmd/reproduce

# Full gate: static checks, build, and the race-enabled suite.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
