GO ?= go

.PHONY: build test race vet bench bench-raw reproduce verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Benchmark sweep + end-to-end reproduce timing, recorded as JSON at
# the repo root so perf changes land with reviewable numbers.
bench:
	$(GO) run ./cmd/simbench -out BENCH_sim.json

# Raw hot-path benchmarks with allocation counts, for interactive use.
bench-raw:
	$(GO) test -run xxx -bench . -benchtime 1s ./internal/netsim/ ./internal/testbed/ ./internal/bayesopt/

reproduce:
	$(GO) run ./cmd/reproduce

# Full gate: static checks, build, the race-enabled suite, and every
# checked-in scenario document parsing AND compiling.
verify:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(GO) run ./cmd/falconsim -validate ./examples/scenarios
