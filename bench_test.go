package repro

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// Each benchmark regenerates one table or figure of the paper's
// evaluation via internal/experiments and reports headline numbers as
// benchmark metrics. Run a single figure with e.g.
//
//	go test -bench=BenchmarkFig4 -benchtime=1x
//
// The custom metrics (gbps, pct, …) carry the reproduced values so a
// bench run doubles as a results table.

// benchRun executes an experiment runner b.N times and reports the
// metrics extracted from the last result.
func benchRun(b *testing.B, id string, metrics func(r *experiments.Result, b *testing.B)) {
	b.Helper()
	runner, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := runner.Run(1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if metrics != nil && last != nil {
		metrics(last, b)
	}
	if last != nil {
		b.Logf("\n%s", last.String())
	}
}

// cell parses a numeric table cell for metric reporting (best effort:
// returns 0 on non-numeric cells, strips %/x suffixes).
func cell(r *experiments.Result, row, col int) float64 {
	if row >= len(r.Rows) || col >= len(r.Rows[row]) {
		return 0
	}
	s := strings.TrimSuffix(strings.TrimSuffix(r.Rows[row][col], "%"), "x")
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0
	}
	return v
}

// BenchmarkTable1TestbedSpecs regenerates Table 1 (testbed
// specifications plus probed capacities).
func BenchmarkTable1TestbedSpecs(b *testing.B) {
	benchRun(b, "table1", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(float64(len(r.Rows)), "testbeds")
	})
}

// BenchmarkFig1aConcurrencyImpact regenerates Figure 1(a): throughput
// vs concurrency on HPCLab and XSEDE.
func BenchmarkFig1aConcurrencyImpact(b *testing.B) {
	benchRun(b, "fig1a", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(cell(r, 0, 1), "hpclab_cc1_gbps")
		b.ReportMetric(cell(r, len(r.Rows)-1, 1), "hpclab_cc32_gbps")
	})
}

// BenchmarkFig1bOptimalConcurrency regenerates Figure 1(b): the optimal
// concurrency per environment.
func BenchmarkFig1bOptimalConcurrency(b *testing.B) {
	benchRun(b, "fig1b", nil)
}

// BenchmarkFig2aStateOfTheArt regenerates Figure 2(a): Globus and HARP
// single-transfer throughput on a fast network.
func BenchmarkFig2aStateOfTheArt(b *testing.B) {
	benchRun(b, "fig2a", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(cell(r, 0, 1), "globus_gbps")
		b.ReportMetric(cell(r, 1, 1), "harp_gbps")
	})
}

// BenchmarkFig2bHARPUnfairness regenerates Figure 2(b): the HARP
// late-comer advantage.
func BenchmarkFig2bHARPUnfairness(b *testing.B) {
	benchRun(b, "fig2b", func(r *experiments.Result, b *testing.B) {
		first, second := cell(r, 0, 1), cell(r, 1, 1)
		if first > 0 {
			b.ReportMetric(second/first, "latecomer_ratio")
		}
	})
}

// BenchmarkFig4LossVsConcurrency regenerates Figure 4: throughput and
// packet loss vs concurrency on the Emulab topology.
func BenchmarkFig4LossVsConcurrency(b *testing.B) {
	benchRun(b, "fig4", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(cell(r, len(r.Rows)-1, 2), "loss_at_cc32_pct")
	})
}

// BenchmarkFig6aUtilityCurves regenerates Figure 6(a): analytic utility
// peaks under linear vs nonlinear regret.
func BenchmarkFig6aUtilityCurves(b *testing.B) {
	benchRun(b, "fig6a", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(cell(r, 1, 1), "linear002_peak_cc")
		b.ReportMetric(cell(r, 2, 1), "nonlinear_peak_cc")
	})
}

// BenchmarkFig6bLinearVsNonlinear regenerates Figure 6(b): empirical
// convergence under each utility form.
func BenchmarkFig6bLinearVsNonlinear(b *testing.B) {
	benchRun(b, "fig6b", nil)
}

// BenchmarkFig6cLinearCompetition regenerates Figure 6(c): linear
// regret's overshoot under competition.
func BenchmarkFig6cLinearCompetition(b *testing.B) {
	benchRun(b, "fig6c", nil)
}

// BenchmarkFig7ConvergenceSpeed regenerates Figure 7: HC vs GD vs BO
// convergence to the 48-optimum.
func BenchmarkFig7ConvergenceSpeed(b *testing.B) {
	benchRun(b, "fig7", func(r *experiments.Result, b *testing.B) {
		b.ReportMetric(cell(r, 0, 1), "hc_reach_s")
		b.ReportMetric(cell(r, 1, 1), "gd_reach_s")
		b.ReportMetric(cell(r, 2, 1), "bo_reach_s")
	})
}

// BenchmarkFig8HillClimbingCompeting regenerates Figure 8: competing
// transfers under Hill Climbing vs Gradient Descent.
func BenchmarkFig8HillClimbingCompeting(b *testing.B) {
	benchRun(b, "fig8", nil)
}

// BenchmarkFig9GDAllNetworks regenerates Figure 9: Falcon-GD in all
// four networks.
func BenchmarkFig9GDAllNetworks(b *testing.B) {
	benchRun(b, "fig9", nil)
}

// BenchmarkFig10BOAllNetworks regenerates Figure 10: Falcon-BO in all
// four networks.
func BenchmarkFig10BOAllNetworks(b *testing.B) {
	benchRun(b, "fig10", nil)
}

// BenchmarkFig11GDCompeting regenerates Figure 11: Falcon-GD stability
// under competition.
func BenchmarkFig11GDCompeting(b *testing.B) {
	benchRun(b, "fig11", nil)
}

// BenchmarkFig12BOCompeting regenerates Figure 12: Falcon-BO stability
// under competition.
func BenchmarkFig12BOCompeting(b *testing.B) {
	benchRun(b, "fig12", nil)
}

// BenchmarkFig13ConcurrencyAdaptation regenerates Figure 13: Falcon-GD
// concurrency adaptation as agents join and leave.
func BenchmarkFig13ConcurrencyAdaptation(b *testing.B) {
	benchRun(b, "fig13", nil)
}

// BenchmarkFig14StateOfTheArtComparison regenerates Figure 14: Falcon
// vs Globus vs HARP on three networks.
func BenchmarkFig14StateOfTheArtComparison(b *testing.B) {
	benchRun(b, "fig14", nil)
}

// BenchmarkFig15MultiParameter regenerates Figure 15: single- vs
// multi-parameter Falcon on the WAN datasets.
func BenchmarkFig15MultiParameter(b *testing.B) {
	benchRun(b, "fig15", nil)
}

// BenchmarkFig16Friendliness regenerates Figure 16: Falcon's impact on
// Globus and HARP transfers.
func BenchmarkFig16Friendliness(b *testing.B) {
	benchRun(b, "fig16", nil)
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationK sweeps the concurrency-regret base K (§3.1).
func BenchmarkAblationK(b *testing.B) { benchRun(b, "abl-k", nil) }

// BenchmarkAblationB sweeps the loss-regret coefficient B (§3.1).
func BenchmarkAblationB(b *testing.B) { benchRun(b, "abl-b", nil) }

// BenchmarkAblationInterval sweeps the sample-transfer duration (§3.2).
func BenchmarkAblationInterval(b *testing.B) { benchRun(b, "abl-interval", nil) }

// BenchmarkAblationWindow sweeps BO's observation window (§3.2).
func BenchmarkAblationWindow(b *testing.B) { benchRun(b, "abl-window", nil) }

// BenchmarkAblationWarmup toggles measurement warm-up exclusion (§3).
func BenchmarkAblationWarmup(b *testing.B) { benchRun(b, "abl-warmup", nil) }

// BenchmarkAblationBBR compares congestion-control models (§6).
func BenchmarkAblationBBR(b *testing.B) { benchRun(b, "abl-bbr", nil) }

// BenchmarkAblationDynamics measures adaptation to background traffic (§1).
func BenchmarkAblationDynamics(b *testing.B) { benchRun(b, "abl-dynamics", nil) }

// BenchmarkAblationSearch races all five search algorithms (§5).
func BenchmarkAblationSearch(b *testing.B) { benchRun(b, "abl-search", nil) }

// BenchmarkAblationNoise sweeps measurement noise (§4.6).
func BenchmarkAblationNoise(b *testing.B) { benchRun(b, "abl-noise", nil) }
